"""Golden tests for the fused trajectory kernel programs.

The contract under test (see :mod:`repro.noise.kernel`): the fused
kernel path — the default in both batched trajectory engines — is
bit-identical to the retained scalar ``run_reference`` across workloads,
strategies, presets, seeds and chunk/block splits, static and dynamic
circuits alike; the opt-in ``fold_matrices`` mode is numerically
equivalent but excluded from that bit-equality contract.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.noise.trajectory as trajectory_module
from repro.noise import NoiseSpec, TrajectoryEngine
from repro.noise.kernel import (
    EventKernel,
    FusedRun,
    KernelSchedule,
    NoiseSite,
    UnitaryStep,
    build_event_kernel,
    build_plan,
    compile_schedule,
    fold_matrix_runs,
)
from repro.noise.trajectory import FINAL_VECTORS_MAX_SHOTS
from repro.runner import SweepPoint
from repro.simulation.verify import VerificationError

TABLE1 = NoiseSpec.from_preset("table1")

#: Tracked compile pool the property tests draw from: every strategy
#: family plus a dynamic feed-forward program, compiled once per session
#: (tracked engines need the unmerged, replayable op stream).
_POOL_SPECS = (
    ("bv", 6, "eqm"),
    ("qft", 4, "rb"),
    ("ghz", 5, "full_ququart"),
    ("teleport", 3, "eqm"),
    ("teleport", 3, "qubit_only"),
)
_PRESETS = ("table1", "pessimistic", "heterogeneous", "ideal")
_COMPILED: dict[int, object] = {}
_ENGINES: dict[tuple, TrajectoryEngine] = {}


def _pooled_compiled(spec_index: int):
    compiled = _COMPILED.get(spec_index)
    if compiled is None:
        bench, size, strategy = _POOL_SPECS[spec_index]
        compiled = SweepPoint(
            bench, size, strategy,
            compiler_kwargs=(("merge_single_qubit_gates", False),),
        ).execute().compiled
        _COMPILED[spec_index] = compiled
    return compiled


def _pooled_engine(spec_index: int, preset: str, **kwargs) -> TrajectoryEngine:
    key = (spec_index, preset, tuple(sorted(kwargs.items())))
    engine = _ENGINES.get(key)
    if engine is None:
        engine = TrajectoryEngine(
            _pooled_compiled(spec_index), NoiseSpec.from_preset(preset),
            track_state=True, **kwargs,
        )
        _ENGINES[key] = engine
    return engine


class TestFusedGoldenEquivalence:
    """Fused kernel chunks must equal the scalar reference, bit for bit."""

    @given(
        spec_index=st.integers(0, len(_POOL_SPECS) - 1),
        preset=st.sampled_from(_PRESETS),
        seed=st.one_of(st.integers(0, 2**8), st.integers(0, 2**40)),
        base_shot=st.integers(0, 5000),
        shots=st.integers(0, 48),
        split=st.integers(0, 48),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fused_matches_reference(
        self, spec_index, preset, seed, base_shot, shots, split
    ):
        engine = _pooled_engine(spec_index, preset)
        reference = engine.run_reference(shots, seed, base_shot=base_shot)
        assert engine.run(shots, seed, base_shot=base_shot) == reference
        # any chunk split of the same shot range is bit-invisible
        cut = min(split, shots)
        first = engine.run(cut, seed, base_shot=base_shot)
        second = engine.run(shots - cut, seed, base_shot=base_shot + cut)
        assert first.no_error_shots + second.no_error_shots == reference.no_error_shots
        assert first.gate_events + second.gate_events == reference.gate_events
        assert first.outcome_successes + second.outcome_successes == (
            reference.outcome_successes
        )

    @given(
        spec_index=st.integers(0, len(_POOL_SPECS) - 1),
        seed=st.integers(0, 2**16),
        shots=st.integers(1, 32),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fused_matches_legacy_op_at_a_time(self, spec_index, seed, shots):
        fused = _pooled_engine(spec_index, "table1")
        legacy = _pooled_engine(spec_index, "table1", use_kernel=False)
        assert fused.run(shots, seed) == legacy.run(shots, seed)

    def test_kraus_idle_policy_fused(self):
        compiled = _pooled_compiled(1)
        spec = TABLE1.with_idle_policy("kraus")
        engine = TrajectoryEngine(compiled, spec, track_state=True)
        assert engine.run(40, seed=9) == engine.run_reference(40, seed=9)

    def test_dynamic_kraus_idle_policy_fused(self):
        compiled = _pooled_compiled(3)
        spec = TABLE1.with_idle_policy("kraus")
        engine = TrajectoryEngine(compiled, spec, track_state=True)
        assert engine.run(40, seed=9) == engine.run_reference(40, seed=9)

    def test_block_split_is_invisible(self, monkeypatch):
        engine = _pooled_engine(0, "table1")
        whole = engine.run(60, seed=3)
        monkeypatch.setattr(trajectory_module, "TRACKED_BLOCK_AMPLITUDES",
                            engine.dimension * 5)
        blocked = TrajectoryEngine(
            _pooled_compiled(0), TABLE1, track_state=True
        )
        assert blocked.run(60, seed=3) == whole

    def test_event_path_fused_matches_reference(self):
        compiled = SweepPoint("bv", 6, "eqm").execute().compiled
        fused = TrajectoryEngine(compiled, TABLE1)
        legacy = TrajectoryEngine(compiled, TABLE1, use_kernel=False)
        reference = fused.run_reference(300, seed=2)
        assert fused.run(300, seed=2) == reference
        assert legacy.run(300, seed=2) == reference


class TestKernelCompilation:
    """The compiled program's structure and artifact-level caching."""

    def test_schedule_cached_on_the_artifact(self):
        compiled = _pooled_compiled(0)
        one = _pooled_engine(0, "table1")
        two = TrajectoryEngine(compiled, NoiseSpec.from_preset("pessimistic"),
                               track_state=True)
        assert one._schedule is not None
        assert one._schedule is two._schedule
        assert one._op_unitaries is two._op_unitaries
        again = compile_schedule(compiled, one.dims, one._op_unitaries)
        assert again is one._schedule

    def test_static_circuit_compiles_to_one_fused_run(self):
        engine = _pooled_engine(0, "table1")
        schedule = engine._schedule
        assert isinstance(schedule, KernelSchedule)
        assert len(schedule.segments) == 1
        assert isinstance(schedule.segments[0], FusedRun)
        assert schedule.num_ops == len(engine.compiled.ops)

    def test_dynamic_circuit_alternates_runs_and_dynamic_ops(self):
        engine = _pooled_engine(3, "table1")
        segments = engine._schedule.segments
        bare = [s for s in segments if isinstance(s, int)]
        assert bare, "a feed-forward program must keep its dynamic ops bare"
        for index in bare:
            assert engine.compiled.ops[index].is_dynamic
        for segment in segments:
            if isinstance(segment, FusedRun):
                for item in segment.items:
                    assert not engine.compiled.ops[item.op_index].is_dynamic

    def test_build_plan_matches_transform_layouts(self):
        plan = build_plan((2, 2, 2, 2), (1,))
        assert plan.sub_dim == 2 and plan.rest == 8
        assert plan.shape(7) == tuple(
            7 if axis == 0 else (2, 2, 2, 2)[axis - 1] for axis in plan.axes
        )
        narrow = build_plan((2, 2), (0,))
        assert not narrow.wide  # rest == 2 never takes the wide panel
        assert narrow.axes[0] == 0

    def test_event_kernel_counts_match_two_compare_loop(self):
        kernel = build_event_kernel(np.array([0.5, 0.0, 0.25]), np.array([0.125]))
        assert isinstance(kernel, EventKernel)
        draws = np.array([[0.4, 0.1, 0.2, 0.1], [0.6, 0.0, 0.3, 0.2]])
        gate, idle = kernel.count_block(draws)
        assert gate.tolist() == [2, 0]
        assert idle.tolist() == [1, 0]


class TestMatrixFolding:
    """`fold_matrices` is numerically equivalent, and only that."""

    def test_folding_merges_adjacent_same_unit_steps(self):
        engine = _pooled_engine(0, "table1")
        folded = fold_matrix_runs(engine._schedule, np.zeros(len(engine.compiled.ops)))
        def count(schedule, kind):
            return sum(
                isinstance(item, kind)
                for segment in schedule.segments
                if isinstance(segment, FusedRun)
                for item in segment.items
            )
        assert count(folded, NoiseSite) == 0  # zero-prob sites all dropped
        assert count(folded, UnitaryStep) < count(engine._schedule, UnitaryStep)

    def test_folded_engine_agrees_numerically(self):
        compiled = _pooled_compiled(1)
        plain = _pooled_engine(1, "table1")
        folded = TrajectoryEngine(compiled, TABLE1, track_state=True,
                                  fold_matrices=True)
        a = plain.run(200, seed=5)
        b = folded.run(200, seed=5)
        # events depend only on the draws, never on the state: exact
        assert (a.no_error_shots, a.gate_events, a.idle_events) == (
            b.no_error_shots, b.gate_events, b.idle_events
        )
        assert a.outcome_fidelity_sum == pytest.approx(
            b.outcome_fidelity_sum, rel=1e-9
        )

    def test_ideal_preset_folds_to_exact_fidelity_one(self):
        folded = TrajectoryEngine(_pooled_compiled(1),
                                  NoiseSpec.from_preset("ideal"),
                                  track_state=True, fold_matrices=True)
        chunk = folded.run(30, seed=0)
        assert chunk.no_error_shots == 30
        assert chunk.outcome_fidelity_sum == pytest.approx(30.0)


class TestFinalVectorStreaming:
    """iter_final_vectors streams; final_vectors stays list-shaped but capped."""

    def test_iterator_matches_list_wrapper(self):
        engine = _pooled_engine(1, "table1")
        streamed = list(engine.iter_final_vectors(25, seed=9))
        listed = engine.final_vectors(25, seed=9)
        assert len(streamed) == len(listed) == 25
        for left, right in zip(streamed, listed):
            assert (left == right).all()

    def test_iterator_is_lazy(self):
        engine = _pooled_engine(1, "table1")
        iterator = engine.iter_final_vectors(10, seed=1)
        assert iter(iterator) is iterator  # a generator, not a list
        first = next(iterator)
        assert first.shape == (engine.dimension,)

    def test_list_wrapper_refuses_unbounded_shots(self):
        engine = _pooled_engine(1, "table1")
        with pytest.raises(ValueError, match="iter_final_vectors"):
            engine.final_vectors(FINAL_VECTORS_MAX_SHOTS + 1, seed=0)
        # the streaming API has no cap: it starts yielding immediately
        stream = engine.iter_final_vectors(FINAL_VECTORS_MAX_SHOTS + 1, seed=0)
        assert next(stream).shape == (engine.dimension,)

    def test_requires_track_state(self):
        compiled = SweepPoint("bv", 4, "eqm").execute().compiled
        engine = TrajectoryEngine(compiled, TABLE1)
        with pytest.raises(VerificationError):
            list(engine.iter_final_vectors(3, seed=0))

    def test_dynamic_vectors_stream_too(self):
        engine = _pooled_engine(3, "table1")
        vectors = list(engine.iter_final_vectors(8, seed=4))
        assert len(vectors) == 8
        for vector in vectors:
            assert vector.shape == (engine.dimension,)
            assert np.isfinite(vector).all()
