"""Tests for the two-transmon Hamiltonian model."""

import numpy as np
import pytest

from repro.pulses import TransmonParams, TransmonSystem
from repro.pulses.hamiltonian import lowering_operator, number_operator


class TestOperators:
    def test_lowering_operator_shape_and_action(self):
        a = lowering_operator(3)
        assert a.shape == (3, 3)
        # a|1> = |0>, a|2> = sqrt(2)|1>
        assert a[0, 1] == pytest.approx(1.0)
        assert a[1, 2] == pytest.approx(np.sqrt(2.0))

    def test_number_operator(self):
        n = number_operator(4)
        assert np.allclose(np.diag(n), [0, 1, 2, 3])

    def test_lowering_requires_two_levels(self):
        with pytest.raises(ValueError):
            lowering_operator(1)


class TestTransmonSystem:
    def test_dimension_accounts_for_guards(self):
        system = TransmonSystem(num_transmons=2, logical_levels=4, guard_levels=1)
        assert system.total_levels == (5, 5)
        assert system.dimension == 25

    def test_single_transmon_dimension(self):
        system = TransmonSystem(num_transmons=1, logical_levels=2, guard_levels=1)
        assert system.dimension == 3
        assert len(system.controls) == 1

    def test_mixed_logical_levels(self):
        system = TransmonSystem(num_transmons=2, logical_levels=(4, 2), guard_levels=0)
        assert system.total_levels == (4, 2)
        assert len(system.logical_indices()) == 8

    def test_drift_is_hermitian(self):
        system = TransmonSystem(num_transmons=2, logical_levels=2, guard_levels=1)
        drift = system.drift
        assert np.allclose(drift, drift.conj().T)

    def test_controls_are_hermitian(self):
        system = TransmonSystem(num_transmons=2, logical_levels=2, guard_levels=1)
        for control in system.controls:
            assert np.allclose(control, control.conj().T)

    def test_hamiltonian_combines_drive(self):
        system = TransmonSystem(num_transmons=1, logical_levels=2, guard_levels=0)
        h0 = system.hamiltonian(np.array([0.0]))
        h1 = system.hamiltonian(np.array([0.02]))
        assert np.allclose(h0, system.drift)
        assert not np.allclose(h0, h1)

    def test_hamiltonian_rejects_wrong_drive_shape(self):
        system = TransmonSystem(num_transmons=2, logical_levels=2)
        with pytest.raises(ValueError):
            system.hamiltonian(np.array([0.01]))

    def test_logical_indices_exclude_guard_states(self):
        system = TransmonSystem(num_transmons=1, logical_levels=2, guard_levels=2)
        assert system.logical_indices() == [0, 1]

    def test_logical_projector_is_isometry(self):
        system = TransmonSystem(num_transmons=2, logical_levels=(2, 2), guard_levels=1)
        projector = system.projector_logical()
        assert projector.shape == (9, 4)
        assert np.allclose(projector.T @ projector, np.eye(4))

    def test_basis_labels_roundtrip(self):
        system = TransmonSystem(num_transmons=2, logical_levels=(4, 2), guard_levels=1)
        for index in range(system.dimension):
            labels = system.basis_labels(index)
            flat = 0
            for label, levels in zip(labels, system.total_levels):
                flat = flat * levels + label
            assert flat == index

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            TransmonSystem(num_transmons=3)
        with pytest.raises(ValueError):
            TransmonSystem(num_transmons=2, logical_levels=(2,))
        with pytest.raises(ValueError):
            TransmonSystem(num_transmons=1, logical_levels=1)
        with pytest.raises(ValueError):
            TransmonSystem(guard_levels=-1)

    def test_default_parameters_match_paper(self):
        params = TransmonParams()
        assert params.omega1_ghz == pytest.approx(4.914)
        assert params.omega2_ghz == pytest.approx(5.114)
        assert params.anharmonicity_ghz == pytest.approx(-0.330)
        assert params.coupling_ghz == pytest.approx(0.0038)
        assert params.max_drive_ghz == pytest.approx(0.045)
