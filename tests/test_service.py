"""Tests for the async sweep service: job queue, dedupe and the file spool."""

import threading
from dataclasses import dataclass

import pytest

from repro.runner import SweepPlan, execute_plan, point_key
from repro.service import (
    SweepService,
    job_results,
    read_status,
    serve_forever,
    serve_once,
    submit_job,
    wait_for_job,
)
from repro.store import ArtifactStore, wait_for

PLAN = SweepPlan.cartesian(("bv",), (4,), ("qubit_only", "eqm"))

#: Cross-thread fixtures for the slow-point dedupe tests (reset per test).
_EXECUTIONS: list[str] = []
_STARTED = threading.Event()
_RELEASE = threading.Event()


@dataclass(frozen=True)
class SlowPoint:
    """Plan point whose execution blocks until the test releases it."""

    name: str

    def payload(self) -> dict:
        return {"kind": "slow", "name": self.name}

    def key(self) -> str:
        return point_key(self)

    def execute(self) -> dict:
        _EXECUTIONS.append(self.name)
        _STARTED.set()
        assert _RELEASE.wait(timeout=30), "test never released the slow points"
        return {"name": self.name}


@dataclass(frozen=True)
class FailingPoint:
    """Plan point that always raises."""

    name: str = "doomed"

    def payload(self) -> dict:
        return {"kind": "failing", "name": self.name}

    def key(self) -> str:
        return point_key(self)

    def execute(self):
        raise RuntimeError("injected point failure")


@pytest.fixture(autouse=True)
def _reset_slow_point_state():
    _EXECUTIONS.clear()
    _STARTED.clear()
    _RELEASE.clear()
    yield
    _RELEASE.set()  # never leave a job thread blocked


class TestSweepService:
    def test_job_lifecycle_and_plan_ordered_results(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with SweepService(store, workers=2) as service:
            job_id = service.submit(PLAN)
            results = service.results(job_id, timeout=120)
            status = service.status(job_id)
        assert status.state == "done"
        assert status.finished
        assert (status.executed, status.cache_hits, status.deduped) == (2, 0, 0)
        reference = execute_plan(PLAN)
        assert [r.report for r in results] == [r.report for r in reference]
        assert [r.strategy for r in results] == ["qubit_only", "eqm"]

    def test_second_submission_is_served_entirely_from_the_store(self, tmp_path):
        # Acceptance criterion: a sweep executed twice through the service
        # hits the store on the second run — 0 compiles.
        store = ArtifactStore(tmp_path)
        with SweepService(store) as service:
            first = service.results(service.submit(PLAN), timeout=120)
            warm_id = service.submit(PLAN)
            second = service.results(warm_id, timeout=120)
            warm = service.status(warm_id)
        assert warm.executed == 0
        assert warm.cache_hits == len(PLAN)
        assert [r.report for r in first] == [r.report for r in second]

    def test_every_job_leaves_a_valid_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with SweepService(store) as service:
            status = service.wait(service.submit(PLAN), timeout=120)
        manifest = store.read_manifest(status.manifest_id)
        assert len(manifest["points"]) == len(PLAN)
        assert manifest["timings"]["executed"] == 2
        assert [p["key"] for p in manifest["points"]] == [point_key(p) for p in PLAN]
        for entry in manifest["points"]:
            assert store.has_blob(entry["blob"])
        assert store.verify().ok

    def test_in_flight_dedupe_across_submitters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with SweepService(store) as service:
            first = service.submit(SweepPlan((SlowPoint("shared"),)))
            assert _STARTED.wait(timeout=30)  # job 1 owns "shared" and is executing
            second = service.submit(SweepPlan((SlowPoint("shared"), SlowPoint("other"))))
            # once job 2 is executing "other" it has already enumerated (and
            # borrowed) "shared"; only then is it safe to let job 1 publish
            wait_for(lambda: "other" in _EXECUTIONS, timeout=30, message="job 2 start")
            _RELEASE.set()
            results_first = service.results(first, timeout=60)
            results_second = service.results(second, timeout=60)
            status = service.status(second)
        # the shared point ran exactly once, in job 1; job 2 borrowed it
        assert _EXECUTIONS.count("shared") == 1
        assert _EXECUTIONS.count("other") == 1
        assert status.deduped == 1
        assert status.executed == 1
        assert results_first[0] == {"name": "shared"}
        assert results_second == [{"name": "shared"}, {"name": "other"}]

    def test_duplicate_points_within_one_plan_execute_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _RELEASE.set()  # no need to block for this one
        with SweepService(store) as service:
            plan = SweepPlan((SlowPoint("twin"), SlowPoint("twin")))
            results = service.results(service.submit(plan), timeout=60)
            status = service.status(service.job_ids()[0])
        assert _EXECUTIONS.count("twin") == 1
        assert status.executed == 1
        assert status.deduped == 1
        assert results[0] == results[1] == {"name": "twin"}

    def test_failing_point_fails_the_job_not_the_service(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with SweepService(store) as service:
            bad = service.submit(SweepPlan((FailingPoint(),)))
            status = service.wait(bad, timeout=60)
            assert status.state == "failed"
            assert "injected point failure" in status.error
            with pytest.raises(RuntimeError, match="injected point failure"):
                service.results(bad, timeout=60)
            # the service still serves later jobs
            good = service.results(service.submit(PLAN), timeout=120)
        assert len(good) == len(PLAN)
        # no manifest for the failed job, and the store still verifies
        assert store.verify().ok

    def test_borrower_sees_the_owners_failure(self, tmp_path):
        store = ArtifactStore(tmp_path)

        class GatedFailure(FailingPoint):
            def execute(self):
                _STARTED.set()
                assert _RELEASE.wait(timeout=30)
                raise RuntimeError("injected point failure")

        with SweepService(store) as service:
            owner = service.submit(SweepPlan((GatedFailure(),)))
            assert _STARTED.wait(timeout=30)
            borrower = service.submit(SweepPlan((GatedFailure(),)))
            _RELEASE.set()
            assert service.wait(owner, timeout=60).state == "failed"
            assert service.wait(borrower, timeout=60).state == "failed"

    def test_unknown_job_raises(self, tmp_path):
        with SweepService(ArtifactStore(tmp_path)) as service:
            with pytest.raises(KeyError):
                service.status("job-999999")


class TestSpool:
    def test_submit_serve_poll_redeem(self, tmp_path):
        spool, store = tmp_path / "spool", ArtifactStore(tmp_path / "store")
        job_id = submit_job(spool, PLAN)
        assert read_status(spool, job_id) is None  # not served yet
        statuses = serve_once(spool, store, workers=2)
        assert [s["job_id"] for s in statuses] == [job_id]
        document = wait_for_job(spool, job_id, timeout=5)
        assert document["state"] == "done"
        assert document["executed"] == len(PLAN)
        results = job_results(store, document["manifest"])
        assert [r.report for r in results] == [r.report for r in execute_plan(PLAN)]

    def test_second_spooled_job_is_store_served(self, tmp_path):
        spool, store = tmp_path / "spool", ArtifactStore(tmp_path / "store")
        submit_job(spool, PLAN)
        serve_once(spool, store)
        warm_job = submit_job(spool, PLAN)
        serve_once(spool, store)
        document = read_status(spool, warm_job)
        assert document["executed"] == 0
        assert document["cache_hits"] == len(PLAN)
        assert len(store.manifest_ids()) == 2

    def test_empty_spool_serves_nothing(self, tmp_path):
        assert serve_once(tmp_path / "spool", ArtifactStore(tmp_path / "store")) == []

    def test_serve_forever_bounded_cycles(self, tmp_path):
        spool, store = tmp_path / "spool", ArtifactStore(tmp_path / "store")
        submit_job(spool, SweepPlan.single("bv", 4, "qubit_only"))
        served = serve_forever(spool, store, poll_interval=0.01, max_cycles=2)
        assert served == 1

    def test_qasm_points_spool_roundtrip(self, tmp_path):
        from repro.runner import SweepPoint

        bell = ('OPENQASM 2.0;\ninclude "qelib1.inc";\n'
                "qreg q[2];\nh q[0];\ncx q[0],q[1];\n")
        plan = SweepPlan((SweepPoint.from_qasm(bell, "qubit_only", name="bell"),))
        spool, store = tmp_path / "spool", ArtifactStore(tmp_path / "store")
        job_id = submit_job(spool, plan)
        serve_once(spool, store)
        document = read_status(spool, job_id)
        assert document["state"] == "done"
        results = job_results(store, document["manifest"])
        assert results[0].compiled.circuit_name == "bell"

    def test_wait_for_job_times_out_when_unserved(self, tmp_path):
        spool = tmp_path / "spool"
        job_id = submit_job(spool, PLAN)
        with pytest.raises(TimeoutError, match="unclaimed"):
            wait_for_job(spool, job_id, timeout=0.1, poll=0.02)

    def test_failed_spool_job_reports_the_error(self, tmp_path):
        spool, store = tmp_path / "spool", ArtifactStore(tmp_path / "store")
        job_id = submit_job(spool, SweepPlan.single("bv", 4, "qubit_only"))
        # sabotage the job file so the plan rebuild fails server-side
        jobs_dir = spool / "jobs"
        path = next(jobs_dir.glob("*.json"))
        path.write_text(path.read_text().replace("qubit_only", "no_such_strategy"))
        statuses = serve_once(spool, store)
        assert statuses[0]["state"] == "failed"
        assert read_status(spool, job_id)["state"] == "failed"
