"""Tests for the Eq. 4 success-probability cost model."""

import math

import pytest

from repro.arch import Device, grid_topology, linear_topology
from repro.compiler import CostModel


@pytest.fixture
def line_costs():
    device = Device(topology=linear_topology(4))
    # Units 1 and 2 operate as ququarts.
    return device, CostModel(device, {1, 2})


class TestStructure:
    def test_unit_modes(self, line_costs):
        device, costs = line_costs
        from repro.gates import UnitMode

        assert costs.unit_mode(0) is UnitMode.QUBIT
        assert costs.unit_mode(1) is UnitMode.QUQUART

    def test_enabled_slots(self, line_costs):
        _device, costs = line_costs
        enabled = set(costs.enabled_slots())
        assert (0, 0) in enabled and (0, 1) not in enabled
        assert (1, 0) in enabled and (1, 1) in enabled
        assert costs.is_enabled((2, 1))
        assert not costs.is_enabled((3, 1))

    def test_slot_neighbors_respect_modes(self, line_costs):
        _device, costs = line_costs
        neighbors = set(costs.slot_neighbors((0, 0)))
        # Unit 0 is a qubit: no partner slot; unit 1 is a ququart: both slots.
        assert neighbors == {(1, 0), (1, 1)}
        neighbors = set(costs.slot_neighbors((1, 0)))
        assert (1, 1) in neighbors
        assert (0, 0) in neighbors and (2, 0) in neighbors and (2, 1) in neighbors
        assert (0, 1) not in neighbors


class TestGateSelection:
    def test_single_qubit_gate(self, line_costs):
        _device, costs = line_costs
        assert costs.single_qubit_gate((0, 0)) == "x"
        assert costs.single_qubit_gate((1, 0)) == "x0"
        assert costs.single_qubit_gate((1, 1)) == "x1"

    def test_cx_gate_selection(self, line_costs):
        _device, costs = line_costs
        assert costs.cx_gate((0, 0), (3, 0)) == "cx2"
        assert costs.cx_gate((1, 0), (0, 0)) == "cx0q"
        assert costs.cx_gate((0, 0), (1, 1)) == "cxq1"
        assert costs.cx_gate((1, 0), (2, 1)) == "cx01"
        assert costs.cx_gate((1, 0), (1, 1)) == "cx0_in"

    def test_swap_gate_selection(self, line_costs):
        _device, costs = line_costs
        assert costs.swap_gate((0, 0), (3, 0)) == "swap2"
        assert costs.swap_gate((0, 0), (1, 1)) == "swapq1"
        assert costs.swap_gate((1, 1), (2, 0)) == "swap01"
        assert costs.swap_gate((1, 0), (1, 1)) == "swap_in"


class TestSuccessProbabilities:
    def test_op_success_formula(self, line_costs):
        device, costs = line_costs
        duration = device.durations.duration("cx2")
        fidelity = device.durations.fidelity("cx2")
        expected = fidelity * math.exp(-duration / device.qubit_t1_ns) ** 2
        assert costs.op_success("cx2", (0, 3)) == pytest.approx(expected)

    def test_ququart_units_use_shorter_t1(self, line_costs):
        device, costs = line_costs
        success_qubit_pair = costs.op_success("cx2", (0, 3))
        success_mixed = costs.op_success("cx2", (0, 1))
        # The same gate is less likely to succeed if one unit is a ququart.
        assert success_mixed < success_qubit_pair

    def test_op_cost_is_negative_log(self, line_costs):
        _device, costs = line_costs
        success = costs.op_success("swap2", (0, 3))
        assert costs.op_cost("swap2", (0, 3)) == pytest.approx(-math.log(success))

    def test_costs_are_positive(self, line_costs):
        _device, costs = line_costs
        assert costs.swap_cost((0, 0), (1, 0)) > 0
        assert costs.cx_cost((0, 0), (1, 0)) > 0


class TestDistances:
    def test_swap_distance_zero_to_self(self, line_costs):
        _device, costs = line_costs
        assert costs.swap_distance((0, 0), (0, 0)) == 0.0

    def test_swap_distance_monotone_with_hops(self, line_costs):
        _device, costs = line_costs
        near = costs.swap_distance((0, 0), (1, 0))
        far = costs.swap_distance((0, 0), (3, 0))
        assert far > near

    def test_shortest_slot_path_endpoints(self, line_costs):
        _device, costs = line_costs
        path = costs.shortest_slot_path((0, 0), (3, 0))
        assert path[0] == (0, 0)
        assert path[-1] == (3, 0)
        # Consecutive path elements must be neighbours.
        for a, b in zip(path, path[1:]):
            assert b in costs.slot_neighbors(a)

    def test_interaction_distance_adjacent_qubits_is_just_cx(self):
        device = Device(topology=linear_topology(4))
        costs = CostModel(device, frozenset())
        distance = costs.interaction_distance((0, 0), (1, 0))
        assert distance == pytest.approx(costs.cx_cost((0, 0), (1, 0)), rel=1e-6)

    def test_interaction_distance_may_prefer_internal_cx(self, line_costs):
        # When the partner unit is a ququart, swapping into it and using the
        # fast internal CX can beat the direct partial CX (this is exactly the
        # flexibility the paper's gate set provides).
        _device, costs = line_costs
        distance = costs.interaction_distance((0, 0), (1, 0))
        assert distance <= costs.cx_cost((0, 0), (1, 0)) + 1e-9

    def test_interaction_distance_far_includes_swaps(self, line_costs):
        _device, costs = line_costs
        adjacent = costs.interaction_distance((0, 0), (1, 0))
        far = costs.interaction_distance((0, 0), (3, 0))
        assert far > adjacent

    def test_qubit_only_model_matches_simple_grid(self):
        device = Device(topology=grid_topology(2, 2))
        costs = CostModel(device, frozenset())
        # With no ququarts every link uses the same swap2 cost.
        step = costs.swap_cost((0, 0), (1, 0))
        assert costs.swap_distance((0, 0), (3, 0)) == pytest.approx(2 * step)
