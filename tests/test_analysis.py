"""Tests for the static analysis subsystem: verifier passes and source lint."""

import dataclasses
import json
import types
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    Finding,
    PROGRAM_PASSES,
    lint_source_text,
    lint_paths,
    lint_workloads,
    verify_compiled,
)
from repro.arch import Device, grid_topology
from repro.cli import main
from repro.compiler import QompressCompiler
from repro.compiler.result import PhysicalOp
from repro.compiler.scheduling import schedule_ops
from repro.compression import get_strategy
from repro.gates.styles import GateStyle
from repro.simulation.verify import VerificationError, register_dims
from repro.workloads import build_benchmark


def compile_benchmark(name, size, strategy="eqm", **kwargs):
    device = Device(topology=grid_topology(2, 3))
    compiler = QompressCompiler(device, get_strategy(strategy), **kwargs)
    return compiler.compile(build_benchmark(name, size))


def reforged(compiled, ops, reschedule=True):
    """A fresh artifact with replaced ops (and consistent times by default).

    Re-running the compiler's own scheduler keeps the corrupt program
    legal under the schedule pass, so each fixture trips exactly the
    pass it is built for.  A fresh dataclass instance also drops the
    schedule/residency memo attributes a cached artifact may carry.
    """
    if reschedule:
        for op in ops:
            op.start_ns = -1.0
        ops = schedule_ops(ops, merge_singles=False)
    return dataclasses.replace(compiled, ops=ops)


def error_passes(report):
    return {finding.pass_name for finding in report.errors}


def stray_enc_artifact():
    """A bv/eqm program with an appended enc that closes no dec."""
    compiled = compile_benchmark("bv", 3)
    dims = register_dims(compiled)
    quad = next(u for u, d in enumerate(dims) if d == 4)
    bare = next(u for u, d in enumerate(dims) if d == 2)
    pair = compiled.compressed_pairs[0]
    ops = list(compiled.ops) + [
        PhysicalOp(gate="enc", units=(bare, quad), logical_qubits=pair,
                   duration_ns=100.0, is_communication=True,
                   slots=((bare, 0), (quad, 1))),
    ]
    return reforged(compiled, ops)


class TestCorruptFixtures:
    """Each known-bad program is caught by exactly its pass."""

    def test_unmatched_enc_is_caught_by_encdec(self):
        report = verify_compiled(stray_enc_artifact())
        assert not report.ok
        assert error_passes(report) == {"encdec"}
        assert any("unmatched enc" in f.message for f in report.errors)

    def test_gate_on_decoded_qubit_is_caught_by_residency(self):
        compiled = compile_benchmark("teleport", 3)
        ops = list(compiled.ops)
        dec_index = next(
            i for i, op in enumerate(ops)
            if op.style is GateStyle.DECODE and not op.moves
        )
        dec = ops[dec_index]
        ejected = dec.logical_qubits[1]
        ejected_slot = dec.slots[0]
        ops.insert(dec_index + 1, PhysicalOp(
            gate="x", units=(ejected_slot[0],), logical_qubits=(ejected,),
            duration_ns=35.0, slots=(ejected_slot,),
        ))
        report = verify_compiled(reforged(compiled, ops))
        assert not report.ok
        assert error_passes(report) == {"residency"}
        assert any("decoded qubit" in f.message for f in report.errors)

    def test_condition_on_unwritten_bit_is_caught_by_classical(self):
        compiled = compile_benchmark("bv", 3, strategy="qubit_only")
        ops = list(compiled.ops)
        target = next(
            i for i, op in enumerate(ops)
            if op.gate not in ("measure", "measure_mid", "reset")
        )
        ops[target] = dataclasses.replace(ops[target], condition=((99,), 1))
        report = verify_compiled(reforged(compiled, ops))
        assert not report.ok
        assert error_passes(report) == {"classical"}
        assert any(f.clbit == 99 for f in report.errors)

    def test_overlapping_ops_are_caught_by_schedule(self):
        compiled = compile_benchmark("bv", 3, strategy="qubit_only")
        ops = [dataclasses.replace(op) for op in compiled.ops]
        first, second = next(
            (i, j)
            for i, a in enumerate(ops) for j, b in enumerate(ops[i + 1:], i + 1)
            if set(a.units) & set(b.units) and b.start_ns >= a.end_ns
        )
        ops[second].start_ns = ops[first].start_ns
        report = verify_compiled(reforged(compiled, ops, reschedule=False))
        assert not report.ok
        assert error_passes(report) == {"schedule"}
        assert any("busy until" in f.message for f in report.errors)

    def test_corrupt_cached_kernel_is_caught_by_kernel_pass(self):
        from repro.analysis.passes import _placeholder_unitaries
        from repro.noise.kernel import _build_schedule

        compiled = compile_benchmark("bv", 3, strategy="qubit_only")
        dims = register_dims(compiled)
        schedule = _build_schedule(
            compiled, dims, _placeholder_unitaries(compiled, dims)
        )
        # A genuine cached schedule verifies clean...
        compiled._schedule_memo = {("trajectory-kernel", dims): schedule}
        assert verify_compiled(compiled).ok
        # ...a mis-sized one is an error from the kernel pass alone.
        compiled._schedule_memo = {
            ("trajectory-kernel", dims): dataclasses.replace(
                schedule, num_ops=schedule.num_ops + 1
            )
        }
        report = verify_compiled(compiled)
        assert not report.ok
        assert error_passes(report) == {"kernel"}


class TestCleanPrograms:
    @pytest.mark.parametrize("strategy", ["eqm", "rb", "fq"])
    @pytest.mark.parametrize("reencode", [True, False])
    def test_teleport_family_verifies_clean(self, strategy, reencode):
        compiled = compile_benchmark(
            "teleport", 3, strategy=strategy, reencode_after_measure=reencode
        )
        report = verify_compiled(compiled)
        assert report.ok, [f.describe() for f in report.errors]
        assert tuple(report.passes_run) == tuple(PROGRAM_PASSES)

    def test_pass_subset_selection(self):
        compiled = compile_benchmark("bv", 3)
        report = verify_compiled(compiled, passes=("encdec", "schedule"))
        assert report.passes_run == ("encdec", "schedule")
        with pytest.raises(KeyError):
            verify_compiled(compiled, passes=("nope",))

    def test_lint_workloads_cells_are_clean(self):
        cells = lint_workloads(benchmarks=("bv", "teleport"),
                               strategies=("qubit_only", "eqm", "fq"))
        assert len(cells) == 6
        assert all(cell["report"].ok for cell in cells)


class TestReportModel:
    def test_report_json_round_trip(self):
        report = verify_compiled(stray_enc_artifact())
        restored = AnalysisReport.from_dict(
            json.loads(json.dumps(report.as_dict()))
        )
        assert restored == report

    def test_finding_round_trip_drops_no_anchors(self):
        finding = Finding(severity="warning", pass_name="schedule",
                          message="m", op_index=4, clbit=2)
        assert Finding.from_dict(finding.as_dict()) == finding
        assert "qubit" not in finding.as_dict()

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(severity="fatal", pass_name="encdec", message="m")

    def test_raise_if_errors_raises_verification_error(self):
        report = verify_compiled(stray_enc_artifact())
        with pytest.raises(VerificationError):
            report.raise_if_errors()
        # The rebased exception is a real error, not a strippable assert.
        assert not issubclass(VerificationError, AssertionError)
        assert issubclass(VerificationError, Exception)


class TestCompilerIntegration:
    def test_verify_true_accepts_clean_compiles(self):
        compiled = compile_benchmark("teleport", 3, verify=True)
        assert compiled.ops

    def test_verify_true_rejects_corrupt_programs(self):
        device = Device(topology=grid_topology(2, 3))
        compiler = QompressCompiler(device, get_strategy("eqm"), verify=True)
        with pytest.raises(VerificationError):
            compiler._verified(stray_enc_artifact())


RNG_SNIPPETS = [
    "import numpy as np\ndef f():\n    return np.random.rand(3)\n",
    "from numpy.random import default_rng\ndef f():\n    return default_rng()\n",
    "import random\ndef f():\n    return random.random()\n",
]

CLEAN_SNIPPETS = [
    "from numpy.random import default_rng\ndef f(seed):\n    return default_rng(seed)\n",
    "import random\ndef f(seed):\n    return random.Random(seed)\n",
    "import time\ndef run():\n    return time.time()\n",
    "import json\ndef content_key(d):\n    return json.dumps(d, sort_keys=True)\n",
]


class TestSourceLint:
    @pytest.mark.parametrize("snippet", RNG_SNIPPETS)
    def test_unseeded_rng_flagged(self, snippet):
        findings = lint_source_text(snippet, "mod.py")
        assert any(f.pass_name == "unseeded-rng" and f.severity == "error"
                   for f in findings)

    @pytest.mark.parametrize("snippet", CLEAN_SNIPPETS)
    def test_clean_snippets_pass(self, snippet):
        assert lint_source_text(snippet, "mod.py") == []

    def test_wallclock_in_key_path_flagged(self):
        snippet = "import time\ndef content_key():\n    return time.time()\n"
        findings = lint_source_text(snippet, "mod.py")
        assert any(f.pass_name == "wallclock-key-path" for f in findings)

    def test_set_iteration_in_key_path_flagged(self):
        snippet = "def make_key(items):\n    for x in set(items):\n        pass\n"
        findings = lint_source_text(snippet, "mod.py")
        assert any(f.pass_name == "unordered-key-path" for f in findings)

    def test_unsorted_json_dumps_in_key_path_flagged(self):
        snippet = "import json\ndef payload_for(d):\n    return json.dumps(d)\n"
        findings = lint_source_text(snippet, "mod.py")
        assert any(f.pass_name == "unordered-key-path" for f in findings)

    def test_backend_contract_flagged(self):
        snippet = "class B:\n    def run_noise_point(self, point):\n        return 42\n"
        findings = lint_source_text(snippet, "mod.py")
        assert any(f.pass_name == "backend-contract" for f in findings)

    def test_backend_contract_satisfied(self):
        snippet = (
            "from repro.backends.contract import ensure_noisy_result\n"
            "class B:\n"
            "    def run_noise_point(self, point):\n"
            "        return ensure_noisy_result(self._run(point))\n"
        )
        assert lint_source_text(snippet, "mod.py") == []

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source_text("def f(:\n", "mod.py")
        assert any(f.pass_name == "parse" for f in findings)

    def test_package_source_tree_is_clean(self):
        tree = Path(__file__).resolve().parents[1] / "src" / "repro"
        report = lint_paths([tree])
        assert report.ok, [f.describe() for f in report.errors]


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["lint", "--workload", "bv",
                     "--strategies", "qubit_only", "eqm"]) == 0
        assert "statically verified" in capsys.readouterr().out

    def test_lint_json_document(self, capsys):
        assert main(["lint", "--workload", "bv", "--strategies", "eqm",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["errors"] == 0
        assert [cell["strategy"] for cell in doc["cells"]] == ["eqm"]

    def test_lint_missing_qasm_exit_two(self, tmp_path, capsys):
        assert main(["lint", "--qasm", str(tmp_path / "missing.qasm")]) == 2
        assert "cannot lint" in capsys.readouterr().err

    def test_lint_qubits_without_workload_rejected(self, tmp_path, capsys):
        qasm = tmp_path / "x.qasm"
        qasm.write_text("OPENQASM 2.0;\n")
        assert main(["lint", "--qasm", str(qasm), "--qubits", "4"]) == 2

    def test_compile_verify_exit_zero_on_clean_program(self, capsys):
        assert main(["compile", "--benchmark", "bv", "--qubits", "3",
                     "--strategy", "eqm", "--verify"]) == 0
        assert "statically verified" in capsys.readouterr().out

    def test_crosscheck_lint_verifies_before_comparing(self, capsys):
        assert main(["crosscheck", "--benchmarks", "bv", "--sizes", "3",
                     "--strategies", "eqm", "--shots", "100", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "statically verified" in out
        assert out.index("statically verified") < out.index("agree")

    def test_store_verify_lint_flags_corrupt_artifact(self, tmp_path, capsys):
        from repro.store import ArtifactStore
        from repro.store.manifest import build_manifest

        store = ArtifactStore(tmp_path / "store")
        artifact = types.SimpleNamespace(compiled=stray_enc_artifact())
        digest = store.put_object("0" * 64, artifact)
        store.write_manifest(build_manifest(
            kind="sweep", plan_fp="1" * 64, code_fp="2" * 64,
            points=[{"key": "0" * 64, "blob": digest, "cached": False}],
            total_seconds=0.0, executed=1, cache_hits=0, deduped=0,
        ))
        # The hash-level audit alone passes: the blob re-hashes fine.
        assert main(["store", "verify", "--dir", str(store.root)]) == 0
        capsys.readouterr()
        # The semantic lint catches the illegal program inside it.
        assert main(["store", "verify", "--dir", str(store.root),
                     "--lint", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True  # default schema untouched
        assert doc["lint"]["ok"] is False
        assert doc["lint"]["artifacts"] == 1
