"""Tests for the evaluation harness and reporting utilities."""

import pytest

from repro.evaluation import (
    DEFAULT_STRATEGIES,
    compile_benchmark,
    device_for,
    figure3_state_evolution,
    figure8_gate_distribution,
    format_table,
    results_to_rows,
    run_strategies,
    save_csv,
    strategy_sweep,
    table1_durations,
)
from repro.evaluation.reporting import SWEEP_HEADERS


class TestDeviceFor:
    def test_grid_sized_to_circuit(self):
        device = device_for("grid", 12)
        assert device.num_units >= 12

    def test_heavy_hex_and_ring_are_65_units(self):
        assert device_for("heavy_hex", 10).num_units == 65
        assert device_for("ring", 10).num_units == 65

    def test_t1_adjustments(self):
        device = device_for("grid", 9, t1_scale=10.0, ququart_t1_ratio=0.5)
        assert device.qubit_t1_us == pytest.approx(1635.0)
        assert device.ququart_t1_us == pytest.approx(817.5)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            device_for("torus", 10)


class TestSweepPlumbing:
    def test_compile_benchmark_returns_result(self):
        result = compile_benchmark("bv", 8, "qubit_only")
        assert result.benchmark == "bv"
        assert result.strategy == "qubit_only"
        assert 0 < result.report.gate_eps <= 1
        assert result.compiled.num_logical_qubits == 8

    def test_run_strategies_shares_device(self):
        results = run_strategies("cnu", 9, strategies=("qubit_only", "eqm"))
        assert set(results) == {"qubit_only", "eqm"}
        assert results["qubit_only"].compiled.device is results["eqm"].compiled.device

    def test_default_strategy_list(self):
        assert "qubit_only" in DEFAULT_STRATEGIES
        assert "fq" in DEFAULT_STRATEGIES
        assert "eqm" in DEFAULT_STRATEGIES


class TestTableAndFigureDrivers:
    def test_table1_groups(self):
        groups = table1_durations()
        assert groups["qubit_qubit"]["cx2"] == pytest.approx(251.0)
        assert groups["qudit"]["swap_in"] == pytest.approx(78.0)
        assert groups["ququart_ququart"]["swap4"] == pytest.approx(1184.0)
        assert len(groups["qubit_ququart"]) == 6

    def test_figure3_traces(self):
        traces = figure3_state_evolution(steps=11)
        assert set(traces) == {"cx2", "cx0q"}
        assert traces["cx2"]["populations"].shape == (11, 4)
        assert traces["cx0q"]["populations"].shape == (11, 8)

    def test_strategy_sweep_shape(self):
        results = strategy_sweep(
            benchmarks=("bv",), sizes=(6, 8), strategies=("qubit_only", "eqm")
        )
        assert set(results) == {"bv"}
        assert set(results["bv"]) == {6, 8}
        assert set(results["bv"][6]) == {"qubit_only", "eqm"}

    def test_figure8_distribution(self):
        distributions = figure8_gate_distribution(
            num_qubits=12, strategies=("qubit_only", "eqm")
        )
        assert set(distributions) == {"qubit_only", "eqm"}
        assert distributions["qubit_only"]["internal CX"] == 0
        assert sum(distributions["eqm"].values()) > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "strategy"], [[1, "qubit_only"], [22, "eqm"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "qubit_only" in lines[2]

    def test_format_table_validates_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_results_to_rows_and_csv(self, tmp_path):
        results = strategy_sweep(
            benchmarks=("bv",), sizes=(6,), strategies=("qubit_only",)
        )
        rows = results_to_rows(results)
        assert len(rows) == 1
        assert rows[0][0] == "bv"
        assert len(rows[0]) == len(SWEEP_HEADERS)
        path = save_csv(tmp_path / "sweep.csv", SWEEP_HEADERS, rows)
        content = path.read_text().splitlines()
        assert content[0].split(",")[0] == "benchmark"
        assert len(content) == 2
