"""Tests for the circuit dependency DAG."""

from repro.circuits import CircuitDAG, QuantumCircuit


class TestDependencies:
    def test_serial_chain_dependencies(self):
        circuit = QuantumCircuit(1).x(0).h(0).z(0)
        dag = CircuitDAG(circuit)
        assert dag.successors(0) == {1}
        assert dag.successors(1) == {2}
        assert dag.predecessors(2) == {1}

    def test_parallel_gates_have_no_edges(self):
        circuit = QuantumCircuit(2).x(0).x(1)
        dag = CircuitDAG(circuit)
        assert dag.successors(0) == set()
        assert dag.predecessors(1) == set()

    def test_two_qubit_gate_joins_chains(self):
        circuit = QuantumCircuit(2).x(0).x(1).cx(0, 1).h(1)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(2) == {0, 1}
        assert dag.successors(2) == {3}

    def test_front_layer(self):
        circuit = QuantumCircuit(3).x(0).x(1).cx(0, 1).x(2)
        dag = CircuitDAG(circuit)
        assert set(dag.front_layer()) == {0, 1, 3}

    def test_topological_order_respects_dependencies(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2).h(2)
        dag = CircuitDAG(circuit)
        order = dag.topological_order()
        position = {node: index for index, node in enumerate(order)}
        for node in range(len(circuit)):
            for succ in dag.successors(node):
                assert position[node] < position[succ]


class TestCriticalPath:
    def test_unit_weight_critical_path_length(self):
        circuit = QuantumCircuit(3)
        for _ in range(4):
            circuit.cx(0, 1)
        circuit.x(2)
        dag = CircuitDAG(circuit)
        assert dag.critical_path_length() == 4

    def test_weighted_critical_path(self):
        circuit = QuantumCircuit(2).x(0).cx(0, 1).x(1)
        dag = CircuitDAG(circuit)
        def weight(gate):
            return 10.0 if gate.name == "cx" else 1.0

        assert dag.critical_path_length(weight) == 12.0

    def test_critical_path_nodes_form_a_chain(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(1, 2).cx(2, 3).x(0)
        dag = CircuitDAG(circuit)
        path = dag.critical_path()
        assert path == [0, 1, 2]

    def test_critical_path_qubits(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(1, 2).cx(2, 3).x(0)
        dag = CircuitDAG(circuit)
        assert dag.critical_path_qubits() == {0, 1, 2, 3}

    def test_empty_circuit(self):
        dag = CircuitDAG(QuantumCircuit(2))
        assert dag.critical_path_length() == 0.0
        assert dag.critical_path() == []

    def test_longest_path_to_and_from(self):
        circuit = QuantumCircuit(2).x(0).cx(0, 1).h(1)
        dag = CircuitDAG(circuit)
        to_node, from_node = dag.longest_path_lengths()
        assert to_node[2] == 3.0
        assert from_node[0] == 3.0
