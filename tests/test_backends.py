"""Tests for the pluggable execution-backend registry and its backends.

Covers the registry error paths (unknown name, duplicate registration,
contract violations surfacing as typed errors), the ExecutionPoint
protocol boundary, the replay backend (warm bit-identical serving with
zero executed points, cold typed miss), the external-sim backend (QASM
round-trip, independent estimates, track-state refusal) and the
cross-backend verification harness.
"""

import dataclasses
import warnings

import pytest

from repro.backends import (
    BackendContractError,
    BackendError,
    CompiledHandle,
    DuplicateBackendError,
    ExecutionBackend,
    ReplayMissError,
    UnknownBackendError,
    ensure_noisy_result,
    get_backend,
    list_backends,
    register_backend,
    unregister_backend,
)
from repro.evaluation import CrossCheckRow, cross_backend_check
from repro.noise.model import NoiseSpec
from repro.noise.points import shot_plan, simulate_point
from repro.noise.result import NoisyResult
from repro.runner import (
    CACHE_DIR_ENV,
    CompileCache,
    ExecutionPoint,
    ParallelExecutor,
    SweepPlan,
    SweepPoint,
    execute_plan,
    execute_point,
    freeze_kwargs,
    point_key,
)
from repro.service import SweepService
from repro.store import ArtifactStore

NOISE = NoiseSpec.from_preset("table1")


def _point(backend: str = "trajectory", **overrides) -> SweepPoint:
    fields = {"benchmark": "bv", "num_qubits": 4, "strategy": "qubit_only",
              "backend": backend}
    fields.update(overrides)
    fields["compiler_kwargs"] = freeze_kwargs(fields.get("compiler_kwargs"))
    return SweepPoint(**fields)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = list_backends()
        assert "trajectory" in names
        assert "replay" in names
        assert "external-sim" in names

    def test_get_backend_is_a_singleton(self):
        assert get_backend("trajectory") is get_backend("trajectory")

    def test_unknown_backend_raises_typed_error(self):
        with pytest.raises(UnknownBackendError, match="unknown execution backend"):
            get_backend("does-not-exist")

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(UnknownBackendError, match="trajectory"):
            get_backend("does-not-exist")

    def test_unknown_backend_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_backend("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateBackendError, match="already registered"):
            @register_backend("trajectory")
            class Impostor(ExecutionBackend):
                name = "trajectory"

    def test_non_backend_class_rejected(self):
        with pytest.raises(TypeError, match="must subclass"):
            @register_backend("toy-not-a-backend")
            class NotABackend:
                pass

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("")

    def test_register_and_unregister_roundtrip(self):
        @register_backend("toy-roundtrip")
        class ToyBackend(ExecutionBackend):
            name = "toy-roundtrip"

        try:
            assert "toy-roundtrip" in list_backends()
            assert get_backend("toy-roundtrip").content_name == "toy-roundtrip"
        finally:
            unregister_backend("toy-roundtrip")
        assert "toy-roundtrip" not in list_backends()
        with pytest.raises(UnknownBackendError):
            get_backend("toy-roundtrip")

    def test_content_name_defaults_to_name(self):
        class ToyBackend(ExecutionBackend):
            name = "toy-content"

        assert ToyBackend.content_name == "toy-content"

    def test_replay_advertises_trajectory_content_name(self):
        assert get_backend("replay").content_name == "trajectory"
        assert get_backend("trajectory").content_name == "trajectory"
        assert get_backend("external-sim").content_name == "external-sim"


class TestResultContract:
    def _result(self, **overrides) -> NoisyResult:
        fields = {"shots": 10, "seed": 0, "no_error_shots": 8,
                  "gate_events": 3, "idle_events": 1}
        fields.update(overrides)
        return NoisyResult(**fields)

    def test_valid_result_passes_through(self):
        result = self._result()
        assert ensure_noisy_result(result, "toy") is result

    def test_wrong_type_raises_contract_error(self):
        with pytest.raises(BackendContractError, match="requires a .*NoisyResult"):
            ensure_noisy_result({"shots": 10}, "toy")

    def test_contract_error_is_a_backend_error_and_type_error(self):
        with pytest.raises(BackendError):
            ensure_noisy_result(None, "toy")
        with pytest.raises(TypeError):
            ensure_noisy_result(None, "toy")

    def test_negative_counter_rejected(self):
        with pytest.raises(BackendContractError, match="gate_events=-1"):
            ensure_noisy_result(self._result(gate_events=-1), "toy")

    def test_non_integer_counter_rejected(self):
        with pytest.raises(BackendContractError, match="shots=2.5"):
            ensure_noisy_result(self._result(shots=2.5), "toy")

    def test_bool_counter_rejected(self):
        with pytest.raises(BackendContractError, match="idle_events=True"):
            ensure_noisy_result(self._result(idle_events=True), "toy")

    def test_more_successes_than_shots_rejected(self):
        with pytest.raises(BackendContractError, match="no_error_shots=11 > shots=10"):
            ensure_noisy_result(self._result(no_error_shots=11), "toy")

    def test_malformed_execute_surfaces_as_contract_error(self):
        """A backend returning garbage fails typed at the point boundary."""

        class BrokenBackend(ExecutionBackend):
            name = "toy-broken"

            def compile(self, circuit, device, strategy, compiler_kwargs=None):
                return get_backend("trajectory").compile(
                    circuit, device, strategy, compiler_kwargs=compiler_kwargs)

            def execute(self, handle, shots, seed, *, noise, base_shot=0,
                        track_state=False):
                return {"shots": shots}  # not a NoisyResult

        backend = BrokenBackend()
        chunk = shot_plan(_point(), NOISE, 4)[0]
        with pytest.raises(BackendContractError, match="toy-broken"):
            backend.run_noise_point(chunk)

    def test_track_state_refused_by_non_tracking_backend(self):
        class NoTrackBackend(ExecutionBackend):
            name = "toy-no-track"

        chunk = shot_plan(_point(), NOISE, 4, track_state=True)[0]
        with pytest.raises(BackendError, match="cannot track"):
            NoTrackBackend().run_noise_point(chunk)


class _NotAPoint:
    """Deliberately fails the ExecutionPoint protocol (no methods at all)."""


class TestExecutionPointProtocol:
    def test_sweep_and_noise_points_satisfy_protocol(self):
        assert isinstance(_point(), ExecutionPoint)
        assert isinstance(shot_plan(_point(), NOISE, 4)[0], ExecutionPoint)

    def test_non_point_fails_isinstance(self):
        assert not isinstance(_NotAPoint(), ExecutionPoint)

    def test_execute_point_rejects_non_points(self):
        with pytest.raises(TypeError, match="not an ExecutionPoint"):
            execute_point(_NotAPoint())

    def test_point_key_rejects_non_points(self):
        with pytest.raises(TypeError, match="missing callable"):
            point_key(_NotAPoint())

    def test_error_names_each_missing_method(self):
        class PayloadOnly:
            def payload(self):
                return {}

        with pytest.raises(TypeError, match=r"key\(\).*execute\(\)"):
            execute_point(PayloadOnly())

    def test_service_submit_rejects_non_points(self, tmp_path):
        with SweepService(ArtifactStore(tmp_path)) as service:
            with pytest.raises(TypeError, match="not an ExecutionPoint"):
                service.submit(SweepPlan((_NotAPoint(),)))


class TestCompileCacheDeprecation:
    def test_path_constructor_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="ArtifactStore"):
            cache = CompileCache(tmp_path)
        assert cache.root == tmp_path

    def test_from_store_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache = CompileCache.from_store(ArtifactStore(tmp_path))
        assert cache.root == tmp_path

    def test_store_and_root_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            CompileCache(tmp_path, store=ArtifactStore(tmp_path))


class TestContentKeys:
    def test_replay_key_equals_trajectory_key(self):
        assert point_key(_point("replay")) == point_key(_point("trajectory"))

    def test_external_sim_key_differs(self):
        assert point_key(_point("external-sim")) != point_key(_point("trajectory"))

    def test_noise_point_keys_follow_the_compile_backend(self):
        trajectory = shot_plan(_point("trajectory"), NOISE, 4)[0]
        replay = shot_plan(_point("replay"), NOISE, 4)[0]
        external = shot_plan(_point("external-sim"), NOISE, 4)[0]
        assert point_key(trajectory) == point_key(replay)
        assert point_key(trajectory) != point_key(external)

    def test_spec_roundtrip_preserves_backend(self):
        point = _point("external-sim")
        assert SweepPoint.from_spec(point.spec()) == point

    def test_spec_without_backend_defaults_to_trajectory(self):
        spec = _point().spec()
        del spec["backend"]
        assert SweepPoint.from_spec(spec).backend == "trajectory"


class TestReplayBackend:
    def _warm_store(self, tmp_path, monkeypatch, plan) -> list:
        """Run ``plan`` on trajectory with a store-backed cache, point replay at it."""
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        return execute_plan(plan, cache=cache), cache

    def test_warm_sweep_replays_bit_identical_with_zero_executed(
            self, tmp_path, monkeypatch):
        plan = SweepPlan.cartesian(("bv",), (4,), ("qubit_only", "eqm"))
        reference, cache = self._warm_store(tmp_path, monkeypatch, plan)

        replay_plan = SweepPlan.cartesian(
            ("bv",), (4,), ("qubit_only", "eqm"), backend="replay")
        executor = ParallelExecutor(cache=cache)
        replayed = executor.run(replay_plan)
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == len(plan)
        for ours, theirs in zip(replayed, reference):
            assert ours.report.total_eps == theirs.report.total_eps
            assert ours.report.makespan_ns == theirs.report.makespan_ns
            assert len(ours.compiled.ops) == len(theirs.compiled.ops)

    def test_warm_shot_chunks_replay_without_an_executor_cache(
            self, tmp_path, monkeypatch):
        """Even cache-less execution serves replay points from the store."""
        point = _point()
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        execute_plan(SweepPlan((point,)), cache=cache)
        reference = simulate_point(point, NOISE, 64, seed=3, cache=cache)

        replay_chunk = shot_plan(_point("replay"), NOISE, 64, seed=3)[0]
        assert replay_chunk.execute() == dataclasses.replace(reference, seed=3)

    def test_cold_point_raises_replay_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        with pytest.raises(ReplayMissError, match="no stored result"):
            _point("replay").execute()

    def test_replay_miss_is_a_lookup_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        with pytest.raises(LookupError):
            _point("replay").execute()

    def test_replay_refuses_live_compile_and_execute(self):
        backend = get_backend("replay")
        with pytest.raises(BackendError, match="cannot compile"):
            backend.compile(None, None, None)
        with pytest.raises(BackendError, match="cannot execute"):
            backend.execute(None, 10, 0, noise=NOISE)


class TestExternalSimBackend:
    def test_compile_round_trips_through_qasm(self):
        handle = get_backend("external-sim").compile_point(_point("external-sim"))
        assert isinstance(handle, CompiledHandle)
        assert handle.backend == "external-sim"
        assert handle.qasm is not None
        assert "OPENQASM" in handle.qasm

    def test_estimate_agrees_with_trajectory(self):
        kwargs = {"compiler_kwargs": {"merge_single_qubit_gates": False}}
        reference = simulate_point(_point(**kwargs), NOISE, 800)
        external = simulate_point(_point("external-sim", **kwargs), NOISE, 800)
        assert external.shots == reference.shots == 800
        low_a, high_a = reference.confidence_interval()
        low_b, high_b = external.confidence_interval()
        assert low_a <= high_b and low_b <= high_a

    def test_chunk_split_is_invariant(self):
        whole = simulate_point(_point("external-sim"), NOISE, 96)
        split = simulate_point(_point("external-sim"), NOISE, 96, chunk_size=32)
        assert whole == split

    def test_track_state_refused(self):
        chunk = shot_plan(_point("external-sim"), NOISE, 8, track_state=True)[0]
        with pytest.raises(BackendError, match="cannot track"):
            chunk.execute()

    def test_merging_is_forced_off(self):
        merged_kwargs = {"compiler_kwargs": {"merge_single_qubit_gates": True}}
        handle = get_backend("external-sim").compile_point(
            _point("external-sim", **merged_kwargs))
        reference = _point(**{"compiler_kwargs":
                              {"merge_single_qubit_gates": False}}).execute()
        assert len(handle.compiled.ops) == len(reference.compiled.ops)


class TestCrossBackendCheck:
    def _result(self, no_error: int, shots: int = 4000) -> NoisyResult:
        return NoisyResult(shots=shots, seed=0, no_error_shots=no_error,
                           gate_events=0, idle_events=0)

    def _row(self, first: NoisyResult, second: NoisyResult) -> CrossCheckRow:
        return CrossCheckRow(
            benchmark="bv", num_qubits=4, strategy="qubit_only",
            analytic_eps=0.9,
            results=(("trajectory", first), ("external-sim", second)),
        )

    def test_close_estimates_agree(self):
        assert self._row(self._result(3600), self._result(3580)).agree

    def test_disjoint_estimates_disagree(self):
        row = self._row(self._result(3600), self._result(1200))
        assert not row.agree
        assert row.max_rel_diff > 0.5

    def test_needs_two_backends(self):
        with pytest.raises(ValueError, match="at least two"):
            cross_backend_check(backends=("trajectory",))

    def test_small_crosscheck_agrees(self):
        rows = cross_backend_check(
            benchmarks=("bv",), sizes=(4,), strategies=("qubit_only",),
            shots=600, workers=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.agree
        assert row.eps("trajectory") == pytest.approx(row.eps("external-sim"),
                                                      rel=0.25)
        payload = row.as_dict()
        assert payload["agree"] is True
        assert set(payload["eps"]) == {"trajectory", "external-sim"}
