"""Tests for the mixed-radix state-vector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pulses import embed_operator, qubit_gate
from repro.pulses.unitaries import CX_MATRIX
from repro.simulation import MixedRadixState


class TestConstruction:
    def test_default_state_is_ground(self):
        state = MixedRadixState((2, 4))
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1:].sum() == pytest.approx(0.0)

    def test_from_levels(self):
        state = MixedRadixState.from_levels((2, 4), (1, 3))
        labels, probability = state.dominant_basis_state()
        assert labels == (1, 3)
        assert probability == pytest.approx(1.0)

    def test_from_levels_validates(self):
        with pytest.raises(ValueError):
            MixedRadixState.from_levels((2, 4), (2, 0))
        with pytest.raises(ValueError):
            MixedRadixState.from_levels((2, 4), (0,))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MixedRadixState(())
        with pytest.raises(ValueError):
            MixedRadixState((2, 1))

    def test_set_vector_requires_normalisation(self):
        state = MixedRadixState((2, 2))
        with pytest.raises(ValueError):
            state.set_vector(np.array([1.0, 1.0, 0.0, 0.0]))
        with pytest.raises(ValueError):
            state.set_vector(np.zeros(3))


class TestEvolution:
    def test_x_on_single_unit(self):
        state = MixedRadixState((2, 2))
        state.apply(qubit_gate("x"), (1,))
        assert state.dominant_basis_state()[0] == (0, 1)

    def test_cx_across_units(self):
        state = MixedRadixState.from_levels((2, 2), (1, 0))
        state.apply(CX_MATRIX, (0, 1))
        assert state.dominant_basis_state()[0] == (1, 1)

    def test_cx_with_reversed_unit_order(self):
        # Applying CX with units (1, 0) makes unit 1 the control.
        state = MixedRadixState.from_levels((2, 2), (0, 1))
        state.apply(CX_MATRIX, (1, 0))
        assert state.dominant_basis_state()[0] == (1, 1)

    def test_hadamard_creates_uniform_marginal(self):
        state = MixedRadixState((2, 2))
        state.apply(qubit_gate("h"), (0,))
        populations = state.unit_populations(0)
        assert populations == pytest.approx([0.5, 0.5])
        assert state.unit_populations(1) == pytest.approx([1.0, 0.0])

    def test_ququart_gate_on_mixed_register(self):
        x0 = embed_operator(qubit_gate("x"), (4,), [(0, 0)])
        state = MixedRadixState((4, 2))
        state.apply(x0, (0,))
        assert state.dominant_basis_state()[0] == (2, 0)

    def test_apply_validates_targets(self):
        state = MixedRadixState((2, 2, 2))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0, 0))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0, 5))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0,))

    def test_entangled_fidelity(self):
        bell = MixedRadixState((2, 2))
        bell.apply(qubit_gate("h"), (0,))
        bell.apply(CX_MATRIX, (0, 1))
        other = MixedRadixState((2, 2))
        other.apply(qubit_gate("h"), (0,))
        other.apply(CX_MATRIX, (0, 1))
        assert bell.fidelity_with(other) == pytest.approx(1.0)
        ground = MixedRadixState((2, 2))
        assert bell.fidelity_with(ground) == pytest.approx(0.5)

    def test_fidelity_requires_same_register(self):
        with pytest.raises(ValueError):
            MixedRadixState((2, 2)).fidelity_with(MixedRadixState((2, 4)))


class TestProperties:
    @given(
        dims=st.lists(st.sampled_from([2, 4]), min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_norm_preserved_by_random_single_unit_gates(self, dims, seed):
        rng = np.random.default_rng(seed)
        state = MixedRadixState(tuple(dims))
        for _ in range(5):
            unit = int(rng.integers(len(dims)))
            gate = qubit_gate(str(rng.choice(["x", "h", "s", "t", "z"])))
            slot = 0 if dims[unit] == 2 else int(rng.integers(2))
            unitary = embed_operator(gate, (dims[unit],), [(0, slot)])
            state.apply(unitary, (unit,))
        assert np.sum(state.probabilities()) == pytest.approx(1.0)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_probabilities_sum_to_one_after_entangling(self, seed):
        rng = np.random.default_rng(seed)
        state = MixedRadixState((2, 4, 2))
        for _ in range(6):
            a, b = rng.choice(3, size=2, replace=False)
            slot_a = 0 if state.dims[a] == 2 else int(rng.integers(2))
            slot_b = 0 if state.dims[b] == 2 else int(rng.integers(2))
            unitary = embed_operator(
                CX_MATRIX, (state.dims[a], state.dims[b]), [(0, slot_a), (1, slot_b)]
            )
            state.apply(unitary, (int(a), int(b)))
        assert np.sum(state.probabilities()) == pytest.approx(1.0)
