"""Tests for the mixed-radix state-vector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pulses import embed_operator, qubit_gate
from repro.pulses.unitaries import CX_MATRIX
from repro.simulation import BatchedMixedRadixState, MixedRadixState


class TestConstruction:
    def test_default_state_is_ground(self):
        state = MixedRadixState((2, 4))
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1:].sum() == pytest.approx(0.0)

    def test_from_levels(self):
        state = MixedRadixState.from_levels((2, 4), (1, 3))
        labels, probability = state.dominant_basis_state()
        assert labels == (1, 3)
        assert probability == pytest.approx(1.0)

    def test_from_levels_validates(self):
        with pytest.raises(ValueError):
            MixedRadixState.from_levels((2, 4), (2, 0))
        with pytest.raises(ValueError):
            MixedRadixState.from_levels((2, 4), (0,))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MixedRadixState(())
        with pytest.raises(ValueError):
            MixedRadixState((2, 1))

    def test_set_vector_requires_normalisation(self):
        state = MixedRadixState((2, 2))
        with pytest.raises(ValueError):
            state.set_vector(np.array([1.0, 1.0, 0.0, 0.0]))
        with pytest.raises(ValueError):
            state.set_vector(np.zeros(3))


class TestEvolution:
    def test_x_on_single_unit(self):
        state = MixedRadixState((2, 2))
        state.apply(qubit_gate("x"), (1,))
        assert state.dominant_basis_state()[0] == (0, 1)

    def test_cx_across_units(self):
        state = MixedRadixState.from_levels((2, 2), (1, 0))
        state.apply(CX_MATRIX, (0, 1))
        assert state.dominant_basis_state()[0] == (1, 1)

    def test_cx_with_reversed_unit_order(self):
        # Applying CX with units (1, 0) makes unit 1 the control.
        state = MixedRadixState.from_levels((2, 2), (0, 1))
        state.apply(CX_MATRIX, (1, 0))
        assert state.dominant_basis_state()[0] == (1, 1)

    def test_hadamard_creates_uniform_marginal(self):
        state = MixedRadixState((2, 2))
        state.apply(qubit_gate("h"), (0,))
        populations = state.unit_populations(0)
        assert populations == pytest.approx([0.5, 0.5])
        assert state.unit_populations(1) == pytest.approx([1.0, 0.0])

    def test_ququart_gate_on_mixed_register(self):
        x0 = embed_operator(qubit_gate("x"), (4,), [(0, 0)])
        state = MixedRadixState((4, 2))
        state.apply(x0, (0,))
        assert state.dominant_basis_state()[0] == (2, 0)

    def test_apply_validates_targets(self):
        state = MixedRadixState((2, 2, 2))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0, 0))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0, 5))
        with pytest.raises(ValueError):
            state.apply(CX_MATRIX, (0,))

    def test_entangled_fidelity(self):
        bell = MixedRadixState((2, 2))
        bell.apply(qubit_gate("h"), (0,))
        bell.apply(CX_MATRIX, (0, 1))
        other = MixedRadixState((2, 2))
        other.apply(qubit_gate("h"), (0,))
        other.apply(CX_MATRIX, (0, 1))
        assert bell.fidelity_with(other) == pytest.approx(1.0)
        ground = MixedRadixState((2, 2))
        assert bell.fidelity_with(ground) == pytest.approx(0.5)

    def test_fidelity_requires_same_register(self):
        with pytest.raises(ValueError):
            MixedRadixState((2, 2)).fidelity_with(MixedRadixState((2, 4)))


class TestProperties:
    @given(
        dims=st.lists(st.sampled_from([2, 4]), min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_norm_preserved_by_random_single_unit_gates(self, dims, seed):
        rng = np.random.default_rng(seed)
        state = MixedRadixState(tuple(dims))
        for _ in range(5):
            unit = int(rng.integers(len(dims)))
            gate = qubit_gate(str(rng.choice(["x", "h", "s", "t", "z"])))
            slot = 0 if dims[unit] == 2 else int(rng.integers(2))
            unitary = embed_operator(gate, (dims[unit],), [(0, slot)])
            state.apply(unitary, (unit,))
        assert np.sum(state.probabilities()) == pytest.approx(1.0)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_probabilities_sum_to_one_after_entangling(self, seed):
        rng = np.random.default_rng(seed)
        state = MixedRadixState((2, 4, 2))
        for _ in range(6):
            a, b = rng.choice(3, size=2, replace=False)
            slot_a = 0 if state.dims[a] == 2 else int(rng.integers(2))
            slot_b = 0 if state.dims[b] == 2 else int(rng.integers(2))
            unitary = embed_operator(
                CX_MATRIX, (state.dims[a], state.dims[b]), [(0, slot_a), (1, slot_b)]
            )
            state.apply(unitary, (int(a), int(b)))
        assert np.sum(state.probabilities()) == pytest.approx(1.0)


class TestSetVectorRenormalisation:
    """set_vector tolerates accumulated float drift (loose sanity bound)."""

    def test_small_drift_is_renormalised(self):
        state = MixedRadixState((2, 2))
        drifted = np.array([1.0 + 5e-5, 0.0, 0.0, 0.0], dtype=complex)
        state.set_vector(drifted)
        assert np.linalg.norm(state.vector) == pytest.approx(1.0, abs=1e-12)

    def test_gross_deviation_still_raises(self):
        state = MixedRadixState((2, 2))
        with pytest.raises(ValueError, match="normalised"):
            state.set_vector(np.array([1.0, 1.0, 0.0, 0.0]))
        with pytest.raises(ValueError):
            state.set_vector(np.zeros(3))

    def test_exactly_normalised_vector_is_unchanged(self):
        state = MixedRadixState((2, 2))
        vector = np.zeros(4, dtype=complex)
        vector[2] = 1.0
        state.set_vector(vector)
        assert (state.vector == vector).all()

    def test_long_damping_kraus_chain_round_trips(self):
        # a deep chain of no-jump amplitude-damping Kraus ops accumulates
        # norm drift past the old 1e-8 gate; the state must still be
        # accepted back via set_vector
        state = MixedRadixState((2, 2))
        state.apply(qubit_gate("h"), (0,))
        state.apply(CX_MATRIX, (0, 1))
        k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - 1e-6)]], dtype=complex)
        for _ in range(500):
            state.apply_kraus(embed_operator(k0, (2,), [(0, 0)]), (0,))
        vector = state.vector
        fresh = MixedRadixState((2, 2))
        fresh.set_vector(vector)  # must not raise
        assert np.linalg.norm(fresh.vector) == pytest.approx(1.0, abs=1e-12)


class TestBatchedState:
    """BatchedMixedRadixState lanes evolve bit-identically to the scalar class."""

    def _random_program(self, dims, rng, steps=6):
        """A list of (operator, units) mixing 1- and 2-unit unitaries.

        Operators are Haar-ish (QR of a random complex matrix) over the
        full sub-dimension, so the helper works for any unit levels —
        including the 3-/5-level units that force the stacked fallback.
        """
        program = []
        for _ in range(steps):
            if len(dims) >= 2 and rng.random() < 0.5:
                a, b = rng.choice(len(dims), size=2, replace=False)
                units = (int(a), int(b))
            else:
                units = (int(rng.integers(len(dims))),)
            sub = int(np.prod([dims[unit] for unit in units]))
            random_matrix = (rng.standard_normal((sub, sub))
                             + 1j * rng.standard_normal((sub, sub)))
            operator = np.linalg.qr(random_matrix)[0]
            program.append((operator, units))
        return program

    @given(
        # 3- and 5-level units exercise the non-power-of-two fallback,
        # where the wide GEMM panel would not be bit-stable
        dims=st.lists(st.sampled_from([2, 3, 4, 5]), min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batch=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=30, deadline=None)
    def test_apply_matches_scalar_per_lane(self, dims, seed, batch):
        dims = tuple(dims)
        rng = np.random.default_rng(seed)
        program = self._random_program(dims, rng)
        batched = BatchedMixedRadixState(dims, batch)
        scalars = [MixedRadixState(dims) for _ in range(batch)]
        for operator, units in program:
            batched.apply(operator, units)
            for scalar in scalars:
                scalar.apply(operator, units)
        lanes = batched.vectors()
        for lane, scalar in zip(lanes, scalars):
            assert (lane == scalar.vector).all()

    def test_lane_masked_apply_touches_only_selected_lanes(self):
        batched = BatchedMixedRadixState((2, 2), 5)
        before = batched.vectors()
        batched.apply(qubit_gate("x"), (0,), lanes=np.array([1, 3]))
        after = batched.vectors()
        scalar = MixedRadixState((2, 2))
        scalar.apply(qubit_gate("x"), (0,))
        for lane in range(5):
            if lane in (1, 3):
                assert (after[lane] == scalar.vector).all()
            else:
                assert (after[lane] == before[lane]).all()

    def test_apply_kraus_matches_scalar_per_lane(self):
        dims = (2, 4)
        rng = np.random.default_rng(3)
        program = self._random_program(dims, rng, steps=4)
        batched = BatchedMixedRadixState(dims, 4)
        scalars = [MixedRadixState(dims) for _ in range(4)]
        for operator, units in program:
            batched.apply(operator, units)
            for scalar in scalars:
                scalar.apply(operator, units)
        k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(0.75)]], dtype=complex)
        operator = embed_operator(k0, (2,), [(0, 0)])
        weights = batched.apply_kraus(operator, (0,))
        for lane, scalar in enumerate(scalars):
            expected = scalar.apply_kraus(operator, (0,))
            assert weights[lane] == expected
            assert (batched.vectors()[lane] == scalar.vector).all()

    def test_apply_kraus_dead_branch_is_a_no_op(self):
        # ground state has no excited amplitude: the jump cannot fire
        batched = BatchedMixedRadixState((2,), 3)
        jump = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=complex)
        weights = batched.apply_kraus(jump, (0,))
        assert (weights == 0.0).all()
        assert (batched.vectors() == BatchedMixedRadixState((2,), 3).vectors()).all()

    def test_unit_populations_match_scalar(self):
        dims = (4, 2, 2)
        rng = np.random.default_rng(11)
        program = self._random_program(dims, rng)
        batched = BatchedMixedRadixState(dims, 3)
        scalar = MixedRadixState(dims)
        for operator, units in program:
            batched.apply(operator, units)
            scalar.apply(operator, units)
        for unit in range(len(dims)):
            batch_pops = batched.unit_populations(unit)
            expected = scalar.unit_populations(unit)
            for lane in range(3):
                assert (batch_pops[lane] == expected).all()

    def test_fidelities_match_scalar_vdot(self):
        dims = (2, 2)
        batched = BatchedMixedRadixState(dims, 2)
        batched.apply(qubit_gate("h"), (0,), lanes=np.array([1]))
        target = MixedRadixState(dims)
        fidelities = batched.fidelities_with(target.vector)
        assert fidelities[0] == pytest.approx(1.0)
        assert fidelities[1] == pytest.approx(0.5)
        probe = MixedRadixState(dims)
        probe.apply(qubit_gate("h"), (0,))
        assert fidelities[1] == probe.fidelity_with(target)

    def test_set_vectors_renormalises_and_validates(self):
        batched = BatchedMixedRadixState((2, 2), 2)
        drifted = np.zeros((2, 4), dtype=complex)
        drifted[0, 0] = 1.0 + 2e-5
        drifted[1, 2] = 1.0 - 2e-5
        batched.set_vectors(drifted)
        norms = np.linalg.norm(batched.vectors(), axis=1)
        assert norms == pytest.approx([1.0, 1.0], abs=1e-12)
        with pytest.raises(ValueError, match="normalised"):
            batched.set_vectors(np.ones((2, 4), dtype=complex))
        with pytest.raises(ValueError, match="shape"):
            batched.set_vectors(np.zeros((3, 4), dtype=complex))

    def test_sample_outcomes_follow_probabilities(self):
        batched = BatchedMixedRadixState((2, 2), 4)
        batched.apply(qubit_gate("x"), (1,), lanes=np.array([2, 3]))
        outcomes = batched.sample_outcomes(np.array([0.3, 0.9, 0.1, 0.5]))
        assert outcomes.tolist() == [0, 0, 1, 1]
        with pytest.raises(ValueError):
            batched.sample_outcomes(np.zeros(3))

    def test_construction_validates(self):
        with pytest.raises(ValueError):
            BatchedMixedRadixState((), 2)
        with pytest.raises(ValueError):
            BatchedMixedRadixState((2, 1), 2)
        with pytest.raises(ValueError):
            BatchedMixedRadixState((2, 2), -1)

    def test_apply_validates_targets(self):
        batched = BatchedMixedRadixState((2, 2, 2), 2)
        with pytest.raises(ValueError):
            batched.apply(CX_MATRIX, (0, 0))
        with pytest.raises(ValueError):
            batched.apply(CX_MATRIX, (0, 5))
        with pytest.raises(ValueError):
            batched.apply(CX_MATRIX, (0,))
