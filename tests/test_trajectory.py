"""Tests for the Monte Carlo trajectory engine and its runner integration."""

import pickle

import pytest

from repro.metrics.eps import total_eps
from repro.noise import (
    NoisePoint,
    NoiseSpec,
    NoisyResult,
    TrajectoryEngine,
    shot_plan,
    simulate_noisy,
    simulate_point,
    wilson_interval,
)
from repro.runner import CompileCache, ParallelExecutor, SweepPoint, execute_plan
from repro.simulation.verify import VerificationError

TABLE1 = NoiseSpec.from_preset("table1")
IDEAL = NoiseSpec.from_preset("ideal")


@pytest.fixture(scope="module")
def compiled_bv6():
    return SweepPoint("bv", 6, "eqm").execute().compiled


@pytest.fixture(scope="module")
def replayable_ghz3():
    point = SweepPoint(
        "ghz", 3, "eqm", compiler_kwargs=(("merge_single_qubit_gates", False),)
    )
    return point.execute().compiled


class TestWilsonInterval:
    def test_requires_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_stays_inside_unit_interval(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and 0.0 < high < 0.1
        low, high = wilson_interval(100, 100)
        assert 0.9 < low < 1.0 and high == 1.0

    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(73, 200)
        assert low < 73 / 200 < high

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(80, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]


class TestDeterminism:
    def test_same_seed_bit_identical(self, compiled_bv6):
        one = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=11)
        two = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=11)
        assert one == two

    def test_different_seed_differs(self, compiled_bv6):
        one = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=0)
        two = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=1)
        assert one.no_error_shots != two.no_error_shots or one != two

    def test_chunk_split_is_irrelevant(self, compiled_bv6):
        engine = TrajectoryEngine(compiled_bv6, TABLE1)
        whole = engine.run(300, seed=5)
        first = engine.run(120, seed=5, base_shot=0)
        second = engine.run(180, seed=5, base_shot=120)
        assert whole.no_error_shots == first.no_error_shots + second.no_error_shots
        assert whole.gate_events == first.gate_events + second.gate_events
        assert whole.idle_events == first.idle_events + second.idle_events

    def test_workers_and_chunk_size_bit_identical(self):
        point = SweepPoint("bv", 6, "eqm")
        serial = simulate_point(point, TABLE1, 600, seed=2, chunk_size=600, workers=1)
        parallel = simulate_point(point, TABLE1, 600, seed=2, chunk_size=97, workers=2)
        assert serial == parallel


class TestEngineBehaviour:
    def test_ideal_noise_never_fails(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, IDEAL, shots=50, seed=0)
        assert result.success_probability == 1.0
        assert result.gate_events == 0
        assert result.idle_events == 0

    def test_estimate_near_analytic(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, TABLE1, shots=4000, seed=0)
        low, high = result.confidence_interval(z=3.29)
        assert low <= total_eps(compiled_bv6) <= high

    def test_event_only_rejects_kraus_policy(self, compiled_bv6):
        with pytest.raises(VerificationError):
            simulate_noisy(compiled_bv6, TABLE1.with_idle_policy("kraus"),
                           shots=5, seed=0)

    def test_tracked_mode_reports_outcome_metrics(self, replayable_ghz3):
        result = simulate_noisy(replayable_ghz3, TABLE1, shots=300, seed=0,
                                track_state=True)
        assert result.tracked
        assert result.outcome_probability is not None
        assert result.mean_outcome_fidelity is not None
        # an error event can still leave the outcome intact, never the reverse
        assert result.outcome_probability >= result.success_probability - 1e-12

    def test_tracked_and_untracked_count_the_same_events(self, replayable_ghz3):
        tracked = simulate_noisy(replayable_ghz3, TABLE1, shots=200, seed=4,
                                 track_state=True)
        untracked = simulate_noisy(replayable_ghz3, TABLE1, shots=200, seed=4)
        assert tracked.no_error_shots == untracked.no_error_shots
        assert tracked.gate_events == untracked.gate_events
        assert tracked.idle_events == untracked.idle_events

    def test_tracked_mode_rejects_merged_circuits(self, compiled_bv6):
        # the default compile merges single-qubit gates into x01 ops
        with pytest.raises(VerificationError):
            TrajectoryEngine(compiled_bv6, TABLE1, track_state=True)

    def test_tracked_mode_rejects_fq(self):
        compiled = SweepPoint(
            "ghz", 4, "fq", compiler_kwargs=(("merge_single_qubit_gates", False),)
        ).execute().compiled
        with pytest.raises(VerificationError):
            TrajectoryEngine(compiled, TABLE1, track_state=True)

    def test_event_only_handles_fq(self):
        compiled = SweepPoint("ghz", 4, "fq").execute().compiled
        result = simulate_noisy(compiled, TABLE1, shots=500, seed=0)
        low, high = result.confidence_interval(z=3.29)
        assert low <= total_eps(compiled) <= high

    def test_rejects_non_positive_shots(self, compiled_bv6):
        with pytest.raises(ValueError):
            simulate_noisy(compiled_bv6, TABLE1, shots=0)

    def test_summary_fields(self, compiled_bv6):
        summary = simulate_noisy(compiled_bv6, TABLE1, shots=100, seed=0).summary()
        assert set(summary) >= {"shots", "seed", "success_probability",
                                "ci_low", "ci_high"}


class TestNoisyResultMerge:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            NoisyResult.from_chunks([], seed=0)

    def test_results_pickle(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, TABLE1, shots=50, seed=0)
        assert pickle.loads(pickle.dumps(result)) == result


class TestShotPlan:
    def test_chunking(self):
        point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(point, TABLE1, shots=1050, chunk_size=500)
        assert [p.shots for p in plan] == [500, 500, 50]
        assert [p.base_shot for p in plan] == [0, 500, 1000]

    def test_invalid_arguments(self):
        point = SweepPoint("bv", 4, "qubit_only")
        with pytest.raises(ValueError):
            shot_plan(point, TABLE1, shots=0)
        with pytest.raises(ValueError):
            shot_plan(point, TABLE1, shots=10, chunk_size=0)

    def test_points_are_hashable_and_picklable(self):
        point = NoisePoint(SweepPoint("bv", 4, "qubit_only"), TABLE1, shots=10)
        assert pickle.loads(pickle.dumps(point)) == point
        assert hash(point) == hash(pickle.loads(pickle.dumps(point)))

    def test_payload_keys(self):
        point = NoisePoint(SweepPoint("bv", 4, "qubit_only"), TABLE1,
                           shots=10, base_shot=20, seed=3)
        payload = point.payload()
        assert payload["kind"] == "noise_shots"
        assert payload["shots"] == 10
        assert payload["base_shot"] == 20
        assert payload["compile"]["benchmark"] == "bv"
        assert payload["noise"] == TABLE1.payload()


class TestRunnerIntegration:
    def test_chunks_cache_and_replay(self, tmp_path):
        point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(point, TABLE1, shots=400, seed=9, chunk_size=100)
        cache = CompileCache(root=tmp_path)
        executor = ParallelExecutor(workers=1, cache=cache)
        first = executor.run(plan)
        assert executor.last_stats.executed == 4
        second = executor.run(plan)
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == 4
        assert first == second

    def test_cached_and_fresh_merges_agree(self, tmp_path):
        point = SweepPoint("bv", 4, "qubit_only")
        cache = CompileCache(root=tmp_path)
        fresh = simulate_point(point, TABLE1, 300, seed=1, chunk_size=100,
                               cache=cache)
        served = simulate_point(point, TABLE1, 300, seed=1, chunk_size=100,
                                cache=cache)
        assert fresh == served

    def test_noise_and_compile_points_share_a_plan(self):
        compile_point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(compile_point, TABLE1, shots=100, chunk_size=100)
        mixed = list(plan) + [compile_point]
        results = execute_plan(mixed)
        assert results[0].shots == 100
        assert results[1].benchmark == "bv"
