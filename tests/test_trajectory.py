"""Tests for the Monte Carlo trajectory engine and its runner integration."""

import pickle

import pytest

from repro.store import ArtifactStore
from repro.metrics.eps import total_eps
from repro.noise import (
    NoisePoint,
    NoiseSpec,
    NoisyResult,
    TrajectoryEngine,
    shot_plan,
    simulate_noisy,
    simulate_point,
    wilson_interval,
)
from repro.runner import CompileCache, ParallelExecutor, SweepPoint, execute_plan
from repro.simulation.verify import VerificationError

TABLE1 = NoiseSpec.from_preset("table1")
IDEAL = NoiseSpec.from_preset("ideal")


@pytest.fixture(scope="module")
def compiled_bv6():
    return SweepPoint("bv", 6, "eqm").execute().compiled


@pytest.fixture(scope="module")
def replayable_ghz3():
    point = SweepPoint(
        "ghz", 3, "eqm", compiler_kwargs=(("merge_single_qubit_gates", False),)
    )
    return point.execute().compiled


class TestWilsonInterval:
    def test_requires_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_stays_inside_unit_interval(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and 0.0 < high < 0.1
        low, high = wilson_interval(100, 100)
        assert 0.9 < low < 1.0 and high == 1.0

    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(73, 200)
        assert low < 73 / 200 < high

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(80, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]


class TestDeterminism:
    def test_same_seed_bit_identical(self, compiled_bv6):
        one = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=11)
        two = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=11)
        assert one == two

    def test_different_seed_differs(self, compiled_bv6):
        one = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=0)
        two = simulate_noisy(compiled_bv6, TABLE1, shots=400, seed=1)
        assert one.no_error_shots != two.no_error_shots or one != two

    def test_chunk_split_is_irrelevant(self, compiled_bv6):
        engine = TrajectoryEngine(compiled_bv6, TABLE1)
        whole = engine.run(300, seed=5)
        first = engine.run(120, seed=5, base_shot=0)
        second = engine.run(180, seed=5, base_shot=120)
        assert whole.no_error_shots == first.no_error_shots + second.no_error_shots
        assert whole.gate_events == first.gate_events + second.gate_events
        assert whole.idle_events == first.idle_events + second.idle_events

    def test_workers_and_chunk_size_bit_identical(self):
        point = SweepPoint("bv", 6, "eqm")
        serial = simulate_point(point, TABLE1, 600, seed=2, chunk_size=600, workers=1)
        parallel = simulate_point(point, TABLE1, 600, seed=2, chunk_size=97, workers=2)
        assert serial == parallel


class TestEngineBehaviour:
    def test_ideal_noise_never_fails(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, IDEAL, shots=50, seed=0)
        assert result.success_probability == 1.0
        assert result.gate_events == 0
        assert result.idle_events == 0

    def test_estimate_near_analytic(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, TABLE1, shots=4000, seed=0)
        low, high = result.confidence_interval(z=3.29)
        assert low <= total_eps(compiled_bv6) <= high

    def test_event_only_rejects_kraus_policy(self, compiled_bv6):
        with pytest.raises(VerificationError):
            simulate_noisy(compiled_bv6, TABLE1.with_idle_policy("kraus"),
                           shots=5, seed=0)

    def test_tracked_mode_reports_outcome_metrics(self, replayable_ghz3):
        result = simulate_noisy(replayable_ghz3, TABLE1, shots=300, seed=0,
                                track_state=True)
        assert result.tracked
        assert result.outcome_probability is not None
        assert result.mean_outcome_fidelity is not None
        # an error event can still leave the outcome intact, never the reverse
        assert result.outcome_probability >= result.success_probability - 1e-12

    def test_tracked_and_untracked_count_the_same_events(self, replayable_ghz3):
        tracked = simulate_noisy(replayable_ghz3, TABLE1, shots=200, seed=4,
                                 track_state=True)
        untracked = simulate_noisy(replayable_ghz3, TABLE1, shots=200, seed=4)
        assert tracked.no_error_shots == untracked.no_error_shots
        assert tracked.gate_events == untracked.gate_events
        assert tracked.idle_events == untracked.idle_events

    def test_tracked_mode_rejects_merged_circuits(self, compiled_bv6):
        # the default compile merges single-qubit gates into x01 ops
        with pytest.raises(VerificationError):
            TrajectoryEngine(compiled_bv6, TABLE1, track_state=True)

    def test_event_only_handles_fq(self):
        compiled = SweepPoint("ghz", 4, "fq").execute().compiled
        result = simulate_noisy(compiled, TABLE1, shots=500, seed=0)
        low, high = result.confidence_interval(z=3.29)
        assert low <= total_eps(compiled) <= high

    def test_tracked_mode_covers_fq(self):
        # the FQ baseline always schedules unmerged, so its encode/decode
        # op stream replays directly — the last scenario gap of PR 3
        compiled = SweepPoint("ghz", 4, "fq").execute().compiled
        tracked = simulate_noisy(compiled, TABLE1, shots=200, seed=4, track_state=True)
        untracked = simulate_noisy(compiled, TABLE1, shots=200, seed=4)
        assert tracked.no_error_shots == untracked.no_error_shots
        assert tracked.gate_events == untracked.gate_events
        assert tracked.idle_events == untracked.idle_events
        assert tracked.outcome_probability >= tracked.success_probability - 1e-12

    def test_rejects_negative_shots(self, compiled_bv6):
        with pytest.raises(ValueError):
            simulate_noisy(compiled_bv6, TABLE1, shots=-1)

    def test_summary_fields(self, compiled_bv6):
        summary = simulate_noisy(compiled_bv6, TABLE1, shots=100, seed=0).summary()
        assert set(summary) >= {"shots", "seed", "success_probability",
                                "ci_low", "ci_high"}


class TestNoisyResultMerge:
    def test_empty_merge_is_the_zero_shot_result(self):
        result = NoisyResult.from_chunks([], seed=7)
        assert result.shots == 0
        assert result.seed == 7
        assert result.gate_events == result.idle_events == result.no_error_shots == 0
        with pytest.raises(ValueError):
            result.success_probability

    def test_results_pickle(self, compiled_bv6):
        result = simulate_noisy(compiled_bv6, TABLE1, shots=50, seed=0)
        assert pickle.loads(pickle.dumps(result)) == result


class TestShotPlan:
    def test_chunking(self):
        point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(point, TABLE1, shots=1050, chunk_size=500)
        assert [p.shots for p in plan] == [500, 500, 50]
        assert [p.base_shot for p in plan] == [0, 500, 1000]

    def test_invalid_arguments(self):
        point = SweepPoint("bv", 4, "qubit_only")
        with pytest.raises(ValueError):
            shot_plan(point, TABLE1, shots=-5)
        with pytest.raises(ValueError):
            shot_plan(point, TABLE1, shots=10, chunk_size=0)

    def test_zero_shots_is_an_empty_plan(self):
        point = SweepPoint("bv", 4, "qubit_only")
        assert list(shot_plan(point, TABLE1, shots=0)) == []

    def test_points_are_hashable_and_picklable(self):
        point = NoisePoint(SweepPoint("bv", 4, "qubit_only"), TABLE1, shots=10)
        assert pickle.loads(pickle.dumps(point)) == point
        assert hash(point) == hash(pickle.loads(pickle.dumps(point)))

    def test_payload_keys(self):
        point = NoisePoint(SweepPoint("bv", 4, "qubit_only"), TABLE1,
                           shots=10, base_shot=20, seed=3)
        payload = point.payload()
        assert payload["kind"] == "noise_shots"
        assert payload["shots"] == 10
        assert payload["base_shot"] == 20
        assert payload["compile"]["benchmark"] == "bv"
        assert payload["noise"] == TABLE1.payload()


class TestRunnerIntegration:
    def test_chunks_cache_and_replay(self, tmp_path):
        point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(point, TABLE1, shots=400, seed=9, chunk_size=100)
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        executor = ParallelExecutor(workers=1, cache=cache)
        first = executor.run(plan)
        assert executor.last_stats.executed == 4
        second = executor.run(plan)
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == 4
        assert first == second

    def test_cached_and_fresh_merges_agree(self, tmp_path):
        point = SweepPoint("bv", 4, "qubit_only")
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        fresh = simulate_point(point, TABLE1, 300, seed=1, chunk_size=100,
                               cache=cache)
        served = simulate_point(point, TABLE1, 300, seed=1, chunk_size=100,
                                cache=cache)
        assert fresh == served

    def test_noise_and_compile_points_share_a_plan(self):
        compile_point = SweepPoint("bv", 4, "qubit_only")
        plan = shot_plan(compile_point, TABLE1, shots=100, chunk_size=100)
        mixed = list(plan) + [compile_point]
        results = execute_plan(mixed)
        assert results[0].shots == 100
        assert results[1].benchmark == "bv"


# ----------------------------------------------------------------------
# PR 4: chunk-batched vectorised engine vs the scalar _reference path
# ----------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

import repro.noise.trajectory as trajectory_module  # noqa: E402
from repro.noise.rng import uniform_streams  # noqa: E402

#: Small compile pool the property tests draw from: every strategy family,
#: FQ included, compiled once per test session.
_POOL_SPECS = (
    ("bv", 6, "eqm"),
    ("ghz", 5, "fq"),
    ("qft", 4, "rb"),
    ("random_clifford_t", 6, "pp"),
)
_PRESETS = ("table1", "pessimistic", "heterogeneous", "ideal")
_ENGINES: dict[tuple, TrajectoryEngine] = {}


def _pooled_engine(spec_index: int, preset: str) -> TrajectoryEngine:
    key = (spec_index, preset)
    engine = _ENGINES.get(key)
    if engine is None:
        bench, size, strategy = _POOL_SPECS[spec_index]
        compiled = SweepPoint(bench, size, strategy).execute().compiled
        engine = TrajectoryEngine(compiled, NoiseSpec.from_preset(preset))
        _ENGINES[key] = engine
    return engine


class TestGoldenEquivalence:
    """The vectorised path must be bit-identical to the scalar reference."""

    @given(
        spec_index=st.integers(0, len(_POOL_SPECS) - 1),
        preset=st.sampled_from(_PRESETS),
        seed=st.one_of(st.integers(0, 2**8), st.integers(0, 2**40)),
        base_shot=st.one_of(
            st.integers(0, 5000),
            st.sampled_from([2**32 - 7, 2**32, 2**33 + 11]),
        ),
        shots=st.integers(0, 160),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_run_matches_reference(self, spec_index, preset, seed, base_shot, shots):
        engine = _pooled_engine(spec_index, preset)
        assert engine.run(shots, seed, base_shot=base_shot) == engine.run_reference(
            shots, seed, base_shot=base_shot
        )

    def test_block_splitting_is_invisible(self, compiled_bv6, monkeypatch):
        whole = TrajectoryEngine(compiled_bv6, TABLE1).run(100, seed=3)
        monkeypatch.setattr(trajectory_module, "EVENT_BLOCK_SHOTS", 7)
        blocked = TrajectoryEngine(compiled_bv6, TABLE1).run(100, seed=3)
        assert whole == blocked

    def test_uniform_streams_are_bit_exact(self):
        import numpy as np

        for seed, base, shots, draws in [
            (0, 0, 9, 6), (11, 123, 5, 40), (2**40 + 3, 0, 4, 8),
            (5, 2**32 - 2, 5, 7), (0, 2**33, 3, 3),
        ]:
            batched = uniform_streams(seed, base, shots, draws)
            reference = np.stack([
                np.random.default_rng((seed, base + i)).random(draws)
                for i in range(shots)
            ])
            assert (batched == reference).all()

    @given(seed=st.integers(0, 2**70), base=st.integers(0, 2**34),
           shots=st.integers(0, 12), draws=st.integers(0, 24))
    @settings(max_examples=40, deadline=None)
    def test_uniform_streams_property(self, seed, base, shots, draws):
        import numpy as np

        batched = uniform_streams(seed, base, shots, draws)
        assert batched.shape == (shots, draws)
        for i in range(shots):
            reference = np.random.default_rng((seed, base + i)).random(draws)
            assert (batched[i] == reference).all()


class TestChunkGeometryInvariance:
    """Any (workers, chunk_size) split of one (seed, shots) batch is identical."""

    SHOTS = 180
    SEED = 13

    @pytest.fixture(scope="class")
    def reference_result(self, compiled_bv6):
        chunk = TrajectoryEngine(compiled_bv6, TABLE1).run_reference(self.SHOTS, self.SEED)
        return NoisyResult.from_chunks([chunk], self.SEED)

    @given(workers=st.integers(1, 2), chunk_size=st.integers(1, 200))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_any_split_matches_the_scalar_whole(self, reference_result, workers, chunk_size):
        split = simulate_point(
            SweepPoint("bv", 6, "eqm"), TABLE1, self.SHOTS,
            seed=self.SEED, chunk_size=chunk_size, workers=workers,
        )
        assert split == reference_result

    @given(boundary=st.integers(0, 180))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_two_way_engine_split(self, compiled_bv6, boundary):
        engine = TrajectoryEngine(compiled_bv6, TABLE1)
        whole = engine.run(self.SHOTS, self.SEED)
        first = engine.run(boundary, self.SEED, base_shot=0)
        second = engine.run(self.SHOTS - boundary, self.SEED, base_shot=boundary)
        assert whole.no_error_shots == first.no_error_shots + second.no_error_shots
        assert whole.gate_events == first.gate_events + second.gate_events
        assert whole.idle_events == first.idle_events + second.idle_events


class TestDegenerateInputs:
    """Zero-shot batches, single-op circuits and all-zero noise are well-defined."""

    def test_zero_shot_run_is_an_empty_chunk(self, compiled_bv6):
        engine = TrajectoryEngine(compiled_bv6, TABLE1)
        for chunk in (engine.run(0, seed=0), engine.run_reference(0, seed=0)):
            assert chunk.shots == 0
            assert chunk.no_error_shots == 0
            assert chunk.gate_events == chunk.idle_events == 0

    def test_zero_shot_simulate_point(self, compiled_bv6):
        result = simulate_point(SweepPoint("bv", 6, "eqm"), TABLE1, 0, seed=1)
        assert result == NoisyResult.from_chunks([], seed=1)
        with pytest.raises(ValueError):
            result.success_probability

    def test_single_op_circuit(self):
        from repro.arch import Device, linear_topology
        from repro.circuits import QuantumCircuit
        from repro.compiler import QompressCompiler
        from repro.compression import get_strategy

        circuit = QuantumCircuit(1, name="one_x").x(0)
        compiled = QompressCompiler(
            Device(topology=linear_topology(2)), get_strategy("qubit_only")
        ).compile(circuit)
        assert len(compiled.ops) == 1
        engine = TrajectoryEngine(compiled, TABLE1)
        assert engine.run(300, seed=0) == engine.run_reference(300, seed=0)

    def test_ideal_noise_counts_exactly_zero_events(self, compiled_bv6):
        # all-zero thresholds may never fire, in either path, for any seed
        engine = TrajectoryEngine(compiled_bv6, IDEAL)
        for seed in (0, 1, 999):
            chunk = engine.run(512, seed=seed)
            assert chunk.gate_events == 0
            assert chunk.idle_events == 0
            assert chunk.no_error_shots == 512
        assert engine.run(512, seed=0) == engine.run_reference(512, seed=0)

    def test_negative_arguments_still_raise(self, compiled_bv6):
        engine = TrajectoryEngine(compiled_bv6, TABLE1)
        with pytest.raises(ValueError):
            engine.run(-1, seed=0)
        with pytest.raises(ValueError):
            engine.run_reference(-2, seed=0)
        with pytest.raises(ValueError):
            uniform_streams(0, 0, -1, 4)
        with pytest.raises(ValueError):
            uniform_streams(0, 0, 4, -1)


class TestFlatChannelExports:
    """The array exports feeding the vectorised engine match the op stream."""

    def test_op_error_probabilities_match_scalar_queries(self, compiled_bv6):
        import numpy as np

        for preset in _PRESETS:
            model = NoiseSpec.from_preset(preset).build(compiled_bv6.device)
            flat = model.op_error_probabilities(compiled_bv6)
            scalar = np.array([
                model.op_error_probability(op) for op in compiled_bv6.ops
            ])
            assert (flat == scalar).all()

    def test_idle_decay_channels_match_exponents(self, compiled_bv6):
        import numpy as np

        model = TABLE1.build(compiled_bv6.device)
        qubits, gammas = model.idle_decay_channels(compiled_bv6)
        exponents = model.residency_decay_exponent(compiled_bv6)
        assert qubits == sorted(exponents)
        expected = np.array([-np.expm1(-exponents[q]) for q in qubits])
        assert (gammas == expected).all()

    def test_error_site_schedule_is_cached(self, compiled_bv6):
        assert compiled_bv6.error_site_schedule() is compiled_bv6.error_site_schedule()
        assert len(compiled_bv6.error_site_schedule()) == len(compiled_bv6.ops)
        assert compiled_bv6.residency_segments() is compiled_bv6.residency_segments()


class TestZeroShotGuards:
    """Zero-shot results are valid containers, but estimates refuse them clearly."""

    def test_confidence_interval_refuses_zero_shots(self):
        result = NoisyResult.from_chunks([], seed=0)
        with pytest.raises(ValueError, match="zero-shot"):
            result.confidence_interval()

    def test_cli_simulate_rejects_zero_shots(self, capsys):
        from repro.cli import main

        code = main(["simulate", "--benchmark", "bv", "--qubits", "4", "--shots", "0"])
        assert code == 2
        assert "--shots must be positive" in capsys.readouterr().err

    def test_validate_eps_rejects_zero_shots(self):
        from repro.evaluation import validate_eps

        with pytest.raises(ValueError, match="positive shot budget"):
            validate_eps(benchmarks=("bv",), sizes=(4,),
                         strategies=("eqm",), shots=0)

    def test_zero_shot_tracked_request_stays_tracked(self):
        point = SweepPoint(
            "ghz", 3, "eqm", compiler_kwargs=(("merge_single_qubit_gates", False),)
        )
        result = simulate_point(point, TABLE1, 0, seed=1, track_state=True)
        assert result.shots == 0
        assert result.tracked
        with pytest.raises(ValueError, match="zero-shot"):
            result.outcome_probability


# ----------------------------------------------------------------------
# PR 5: chunk-batched state-tracking path vs the scalar _reference path
# ----------------------------------------------------------------------

#: Tracked compile pool: every strategy family with a replayable op stream
#: (single-qubit merging disabled; FQ always schedules unmerged).
_TRACKED_POOL_SPECS = (
    ("bv", 6, "eqm", (("merge_single_qubit_gates", False),)),
    ("ghz", 5, "fq", ()),
    ("qft", 4, "rb", (("merge_single_qubit_gates", False),)),
    ("random_clifford_t", 6, "pp", (("merge_single_qubit_gates", False),)),
)
_TRACKED_ENGINES: dict[tuple, TrajectoryEngine] = {}


def _tracked_engine(spec_index: int, preset: str) -> TrajectoryEngine:
    key = (spec_index, preset)
    engine = _TRACKED_ENGINES.get(key)
    if engine is None:
        bench, size, strategy, kwargs = _TRACKED_POOL_SPECS[spec_index]
        compiled = SweepPoint(
            bench, size, strategy, compiler_kwargs=kwargs
        ).execute().compiled
        spec = NoiseSpec.from_preset(preset)
        engine = TrajectoryEngine(compiled, spec, track_state=True)
        _TRACKED_ENGINES[key] = engine
    return engine


class TestEagerPolicyValidation:
    """kraus + track_state=False fails at construction, not mid-run."""

    def test_kraus_untracked_raises_in_init(self, compiled_bv6):
        with pytest.raises(VerificationError, match="track_state=True"):
            TrajectoryEngine(compiled_bv6, TABLE1.with_idle_policy("kraus"))

    def test_kraus_tracked_constructs(self, replayable_ghz3):
        engine = TrajectoryEngine(
            replayable_ghz3, TABLE1.with_idle_policy("kraus"), track_state=True
        )
        chunk = engine.run(10, seed=0)
        assert chunk.tracked

    def test_simulate_noisy_still_surfaces_the_error(self, compiled_bv6):
        with pytest.raises(VerificationError):
            simulate_noisy(compiled_bv6, TABLE1.with_idle_policy("kraus"),
                           shots=5, seed=0)


class TestTrackedGoldenEquivalence:
    """The batched tracked path must be bit-identical to the scalar loop."""

    @given(
        spec_index=st.integers(0, len(_TRACKED_POOL_SPECS) - 1),
        preset=st.sampled_from(_PRESETS),
        seed=st.one_of(st.integers(0, 2**8), st.integers(0, 2**40)),
        base_shot=st.one_of(
            st.integers(0, 5000),
            st.sampled_from([2**32 - 7, 2**32, 2**33 + 11]),
        ),
        shots=st.integers(0, 60),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tracked_run_matches_reference(self, spec_index, preset, seed,
                                           base_shot, shots):
        engine = _tracked_engine(spec_index, preset)
        assert engine.run(shots, seed, base_shot=base_shot) == engine.run_reference(
            shots, seed, base_shot=base_shot
        )

    @pytest.mark.parametrize("seed", [0, 7])
    def test_kraus_policy_matches_reference(self, replayable_ghz3, seed):
        engine = TrajectoryEngine(
            replayable_ghz3, TABLE1.with_idle_policy("kraus"), track_state=True
        )
        assert engine.run(200, seed) == engine.run_reference(200, seed)

    def test_tracked_block_splitting_is_invisible(self, replayable_ghz3, monkeypatch):
        whole = TrajectoryEngine(replayable_ghz3, TABLE1, track_state=True).run(90, seed=3)
        monkeypatch.setattr(trajectory_module, "TRACKED_BLOCK_AMPLITUDES", 1)
        blocked = TrajectoryEngine(replayable_ghz3, TABLE1, track_state=True).run(90, seed=3)
        assert whole == blocked

    def test_final_vectors_match_scalar_replay(self, replayable_ghz3):
        import numpy as np

        engine = TrajectoryEngine(replayable_ghz3, TABLE1, track_state=True)
        batched = engine.final_vectors(25, seed=9)
        for offset, vector in enumerate(batched):
            rng = np.random.default_rng((9, offset))
            scalar = engine._run_shot(rng).vector
            assert (vector == scalar).all()


class TestTrackedChunkGeometry:
    """Any (workers, chunk_size) split of a tracked batch reproduces the
    scalar reference chunks bit for bit."""

    SHOTS = 90
    SEED = 6
    POINT = SweepPoint(
        "ghz", 3, "eqm", compiler_kwargs=(("merge_single_qubit_gates", False),)
    )

    @pytest.fixture(scope="class")
    def reference_engine(self):
        return TrajectoryEngine(self.POINT.execute().compiled, TABLE1, track_state=True)

    @given(workers=st.integers(1, 2), chunk_size=st.integers(1, 120))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_any_split_matches_reference_chunks(self, reference_engine, workers,
                                                chunk_size):
        chunks = []
        base = 0
        while base < self.SHOTS:
            count = min(chunk_size, self.SHOTS - base)
            chunks.append(reference_engine.run_reference(count, self.SEED, base_shot=base))
            base += count
        expected = NoisyResult.from_chunks(chunks, self.SEED)
        split = simulate_point(
            self.POINT, TABLE1, self.SHOTS, seed=self.SEED,
            chunk_size=chunk_size, workers=workers, track_state=True,
        )
        assert split == expected
