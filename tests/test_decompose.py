"""Tests for the Toffoli / Fredkin / rzz decomposition pass."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.simulation import simulate_logical_circuit


def _states_equivalent(a: np.ndarray, b: np.ndarray) -> bool:
    return abs(np.vdot(a, b)) ** 2 > 1 - 1e-9


class TestDecomposition:
    def test_only_basis_gates_remain(self):
        circuit = QuantumCircuit(4).ccx(0, 1, 2).cswap(0, 2, 3).rzz(0.3, 1, 2)
        lowered = decompose_to_basis(circuit)
        assert all(gate.num_qubits <= 2 for gate in lowered)
        assert all(gate.name not in ("ccx", "cswap", "rzz") for gate in lowered)

    def test_plain_gates_copied_verbatim(self, bell_circuit):
        lowered = decompose_to_basis(bell_circuit)
        assert lowered == bell_circuit

    def test_decomposition_is_idempotent(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        once = decompose_to_basis(circuit)
        twice = decompose_to_basis(once)
        assert once == twice

    @pytest.mark.parametrize("bits", [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0), (1, 1, 1)])
    def test_toffoli_truth_table(self, bits):
        prep = QuantumCircuit(3)
        for index, bit in enumerate(bits):
            if bit:
                prep.x(index)
        prep.ccx(0, 1, 2)
        expected = simulate_logical_circuit(prep)
        lowered = decompose_to_basis(prep)
        actual = simulate_logical_circuit(lowered)
        assert _states_equivalent(expected, actual)

    @pytest.mark.parametrize("bits", [(0, 1, 0), (1, 1, 0), (1, 0, 1)])
    def test_fredkin_truth_table(self, bits):
        prep = QuantumCircuit(3)
        for index, bit in enumerate(bits):
            if bit:
                prep.x(index)
        prep.cswap(0, 1, 2)
        expected = simulate_logical_circuit(prep)
        actual = simulate_logical_circuit(decompose_to_basis(prep))
        assert _states_equivalent(expected, actual)

    def test_toffoli_on_superposition(self):
        circuit = QuantumCircuit(3).h(0).h(1).ccx(0, 1, 2)
        expected = simulate_logical_circuit(circuit)
        actual = simulate_logical_circuit(decompose_to_basis(circuit))
        assert _states_equivalent(expected, actual)

    def test_rzz_equivalence(self):
        circuit = QuantumCircuit(2).h(0).h(1).rzz(0.7, 0, 1)
        expected = simulate_logical_circuit(circuit)
        actual = simulate_logical_circuit(decompose_to_basis(circuit))
        assert _states_equivalent(expected, actual)

    def test_gate_counts_of_toffoli(self):
        lowered = decompose_to_basis(QuantumCircuit(3).ccx(0, 1, 2))
        counts = lowered.count_ops()
        assert counts["cx"] == 6
        assert counts["h"] == 2
