"""Tests for the Device model."""

import pytest

from repro.arch import Device, grid_topology
from repro.arch.device import DEFAULT_QUBIT_T1_US, DEFAULT_QUQUART_T1_US
from repro.pulses import GateDurationTable


class TestDefaults:
    def test_default_coherence_times_match_paper(self):
        device = Device(topology=grid_topology(2, 2))
        assert device.qubit_t1_us == pytest.approx(163.5)
        assert device.ququart_t1_us == pytest.approx(163.5 / 3.0)
        assert DEFAULT_QUQUART_T1_US == pytest.approx(DEFAULT_QUBIT_T1_US / 3.0)

    def test_t1_in_nanoseconds(self):
        device = Device(topology=grid_topology(2, 2))
        assert device.qubit_t1_ns == pytest.approx(163_500.0)
        assert device.t1_ns(is_ququart=True) == pytest.approx(device.ququart_t1_ns)
        assert device.t1_ns(is_ququart=False) == pytest.approx(device.qubit_t1_ns)

    def test_name_defaults_to_topology(self):
        device = Device(topology=grid_topology(2, 3))
        assert device.name == "grid-2x3"

    def test_capacity_is_twice_unit_count(self):
        device = Device(topology=grid_topology(2, 3))
        assert device.num_units == 6
        assert device.capacity == 12

    def test_grid_for_circuit_constructor(self):
        device = Device.grid_for_circuit(10)
        assert device.num_units >= 10

    def test_invalid_t1_rejected(self):
        with pytest.raises(ValueError):
            Device(topology=grid_topology(2, 2), qubit_t1_us=0.0)


class TestDerivedDevices:
    def test_with_t1_scaled(self):
        device = Device(topology=grid_topology(2, 2))
        scaled = device.with_t1_scaled(10.0)
        assert scaled.qubit_t1_us == pytest.approx(1635.0)
        assert scaled.ququart_t1_us == pytest.approx(545.0)
        # Original untouched (frozen dataclass semantics).
        assert device.qubit_t1_us == pytest.approx(163.5)

    def test_with_t1_scaled_validates(self):
        with pytest.raises(ValueError):
            Device(topology=grid_topology(2, 2)).with_t1_scaled(0.0)

    def test_with_ququart_t1_ratio(self):
        device = Device(topology=grid_topology(2, 2)).with_ququart_t1_ratio(0.5)
        assert device.ququart_t1_us == pytest.approx(device.qubit_t1_us * 0.5)

    def test_ratio_of_one_equalises_t1(self):
        device = Device(topology=grid_topology(2, 2)).with_ququart_t1_ratio(1.0)
        assert device.ququart_t1_us == pytest.approx(device.qubit_t1_us)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            Device(topology=grid_topology(2, 2)).with_ququart_t1_ratio(0.0)
        with pytest.raises(ValueError):
            Device(topology=grid_topology(2, 2)).with_ququart_t1_ratio(1.5)

    def test_with_durations(self):
        table = GateDurationTable().with_overrides(durations_ns={"cx2": 100.0})
        device = Device(topology=grid_topology(2, 2)).with_durations(table)
        assert device.durations.duration("cx2") == pytest.approx(100.0)
