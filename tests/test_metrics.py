"""Tests for the EPS metrics and gate-type histograms."""

import math

import pytest

from repro.arch import Device, grid_topology
from repro.compiler import QompressCompiler
from repro.compiler.result import CompiledCircuit, PhysicalOp
from repro.compression import QubitOnly, get_strategy
from repro.gates import GateStyle
from repro.metrics import (
    EPSReport,
    FIGURE8_CATEGORIES,
    coherence_eps,
    evaluate_eps,
    gate_eps,
    grouped_histogram,
    total_eps,
)
from tests.conftest import make_random_circuit


def _tiny_compiled(ops, ququart_units=frozenset(), makespan_placement=None):
    device = Device(topology=grid_topology(2, 2))
    placement = makespan_placement or {0: (0, 0), 1: (1, 0)}
    return CompiledCircuit(
        circuit_name="tiny",
        device=device,
        strategy_name="manual",
        ops=ops,
        initial_placement=placement,
        final_placement=dict(placement),
        ququart_units=frozenset(ququart_units),
        compressed_pairs=(),
        num_logical_qubits=len(placement),
    )


class TestGateEPS:
    def test_product_of_fidelities(self):
        ops = [
            PhysicalOp("cx2", (0, 1), fidelity=0.99, duration_ns=251.0, start_ns=0.0),
            PhysicalOp("x", (0,), fidelity=0.999, duration_ns=35.0, start_ns=251.0),
        ]
        compiled = _tiny_compiled(ops)
        assert gate_eps(compiled) == pytest.approx(0.99 * 0.999)

    def test_zero_fidelity_short_circuits(self):
        ops = [PhysicalOp("cx2", (0, 1), fidelity=0.0, duration_ns=251.0, start_ns=0.0)]
        assert gate_eps(_tiny_compiled(ops)) == 0.0

    def test_empty_circuit_has_unity_eps(self):
        compiled = _tiny_compiled([])
        assert gate_eps(compiled) == pytest.approx(1.0)
        assert coherence_eps(compiled) == pytest.approx(1.0)


class TestCoherenceEPS:
    def test_qubit_only_formula(self):
        duration = 10_000.0
        ops = [PhysicalOp("cx2", (0, 1), fidelity=0.99, duration_ns=duration, start_ns=0.0)]
        compiled = _tiny_compiled(ops)
        t1 = compiled.device.qubit_t1_ns
        expected = math.exp(-duration / t1) ** 2  # two logical qubits
        assert coherence_eps(compiled) == pytest.approx(expected)

    def test_ququart_residency_uses_shorter_t1(self):
        duration = 10_000.0
        ops = [PhysicalOp("cx0q", (0, 1), fidelity=0.99, duration_ns=duration, start_ns=0.0)]
        placement = {0: (0, 0), 1: (0, 1), 2: (1, 0)}
        compiled = _tiny_compiled(ops, ququart_units={0}, makespan_placement=placement)
        device = compiled.device
        expected = math.exp(
            -2 * duration / device.ququart_t1_ns - duration / device.qubit_t1_ns
        )
        assert coherence_eps(compiled) == pytest.approx(expected)

    def test_total_eps_is_product(self):
        ops = [PhysicalOp("cx2", (0, 1), fidelity=0.99, duration_ns=5000.0, start_ns=0.0)]
        compiled = _tiny_compiled(ops)
        assert total_eps(compiled) == pytest.approx(
            gate_eps(compiled) * coherence_eps(compiled)
        )

    def test_mode_times_sum_to_makespan(self, grid_device):
        circuit = make_random_circuit(8, 30, seed=9)
        compiled = QompressCompiler(grid_device, get_strategy("eqm")).compile(circuit)
        makespan = compiled.makespan_ns
        for qubit_time, ququart_time in compiled.qubit_mode_times().values():
            assert qubit_time + ququart_time == pytest.approx(makespan, rel=1e-9)


class TestReports:
    def test_evaluate_eps_fields(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=10)
        compiled = QompressCompiler(grid_device, QubitOnly()).compile(circuit)
        report = evaluate_eps(compiled)
        assert isinstance(report, EPSReport)
        assert 0 < report.gate_eps <= 1
        assert 0 < report.coherence_eps <= 1
        assert report.total_eps == pytest.approx(report.gate_eps * report.coherence_eps)
        assert report.makespan_ns == pytest.approx(compiled.makespan_ns)
        assert report.num_ops == compiled.num_ops

    def test_improvement_over(self):
        base = EPSReport("c", "qubit_only", "d", 0.5, 0.8, 0.4, 1000.0, 10, 2, 0)
        better = EPSReport("c", "eqm", "d", 0.75, 0.4, 0.3, 2000.0, 8, 1, 3)
        ratios = better.improvement_over(base)
        assert ratios["gate_eps"] == pytest.approx(1.5)
        assert ratios["coherence_eps"] == pytest.approx(0.5)
        assert ratios["makespan"] == pytest.approx(0.5)

    def test_improvement_over_zero_baseline(self):
        base = EPSReport("c", "qubit_only", "d", 0.0, 0.8, 0.0, 1000.0, 10, 2, 0)
        better = EPSReport("c", "eqm", "d", 0.5, 0.4, 0.2, 2000.0, 8, 1, 3)
        assert better.improvement_over(base)["gate_eps"] == float("inf")


class TestHistograms:
    def test_grouped_histogram_covers_all_ops(self, grid_device):
        circuit = make_random_circuit(8, 40, seed=11)
        compiled = QompressCompiler(grid_device, get_strategy("eqm")).compile(circuit)
        grouped = grouped_histogram(compiled)
        categorised = sum(grouped.values())
        uncategorised = compiled.style_counts().get(GateStyle.MEASUREMENT, 0)
        assert categorised + uncategorised == compiled.num_ops

    def test_category_labels_are_stable(self):
        labels = [label for label, _styles in FIGURE8_CATEGORIES]
        assert "internal CX" in labels
        assert "qubit-qubit CX" in labels
        assert "encode/decode" in labels

    def test_qubit_only_histogram_has_no_ququart_entries(self, grid_device):
        circuit = make_random_circuit(6, 25, seed=12)
        compiled = QompressCompiler(grid_device, QubitOnly()).compile(circuit)
        grouped = grouped_histogram(compiled)
        assert grouped["internal CX"] == 0
        assert grouped["ququart-ququart CX"] == 0
        assert grouped["qubit-qubit CX"] > 0
