"""Trajectory-vs-density-matrix agreement on small (1-3 unit) systems.

The density path evolves the exact channel composition; the trajectory
engine (kraus idle policy) unravels it stochastically.  These tests check
that the Monte Carlo estimator converges to the exact channel result within
the reported confidence interval, including property-based sweeps over the
noise knobs via hypothesis.
"""

import numpy as np
import pytest

from repro.arch import Device, linear_topology
from repro.compiler.pipeline import QompressCompiler
from repro.compression import get_strategy
from repro.noise import (
    NoiseSpec,
    exact_outcome_probability,
    reference_density,
    simulate_noisy,
    trajectory_mean_density,
    wilson_interval,
)
from repro.simulation.verify import VerificationError
from repro.workloads.registry import build_benchmark

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

KRAUS = NoiseSpec(idle_policy="kraus")


def _compiled(benchmark: str, qubits: int, strategy: str = "qubit_only", units: int | None = None):
    """Compile on a line device of at most 3 units (the reference path's cap)."""
    device = Device(topology=linear_topology(units or qubits))
    compiler = QompressCompiler(
        device, get_strategy(strategy), merge_single_qubit_gates=False
    )
    return compiler.compile(build_benchmark(benchmark, qubits))


@pytest.fixture(scope="module")
def ghz3():
    return _compiled("ghz", 3)


@pytest.fixture(scope="module")
def ghz3_compressed():
    # 3 logical qubits on 2 units forces a ququart encoding
    return _compiled("ghz", 3, "eqm", units=2)


class TestReferenceDensity:
    def test_is_a_density_matrix(self, ghz3):
        rho = reference_density(ghz3, KRAUS)
        assert np.isclose(np.trace(rho).real, 1.0)
        assert np.allclose(rho, rho.conj().T)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() > -1e-10

    def test_ideal_model_gives_the_pure_state(self, ghz3):
        rho = reference_density(ghz3, NoiseSpec.from_preset("ideal"))
        # purity 1 <=> pure state
        assert np.isclose(np.trace(rho @ rho).real, 1.0)
        assert np.isclose(exact_outcome_probability(ghz3, NoiseSpec.from_preset("ideal")), 1.0)

    def test_noise_mixes_the_state(self, ghz3):
        rho = reference_density(ghz3, KRAUS)
        assert np.trace(rho @ rho).real < 1.0

    def test_large_registers_rejected(self):
        compiled = _compiled("ghz", 5, units=5)
        with pytest.raises(VerificationError):
            reference_density(compiled, KRAUS)

    def test_mean_density_requires_kraus(self, ghz3):
        with pytest.raises(ValueError):
            trajectory_mean_density(ghz3, NoiseSpec(), shots=5)


class TestTrajectoryAgreement:
    def test_mean_density_converges(self, ghz3):
        exact = reference_density(ghz3, KRAUS)
        sampled = trajectory_mean_density(ghz3, KRAUS, shots=500, seed=0)
        # trace distance: half the sum of singular values of the difference
        distance = 0.5 * np.linalg.svd(exact - sampled, compute_uv=False).sum()
        assert distance < 0.08

    def test_mean_density_converges_with_a_ququart(self, ghz3_compressed):
        assert ghz3_compressed.ququart_units, "eqm should compress ghz-3"
        exact = reference_density(ghz3_compressed, KRAUS)
        sampled = trajectory_mean_density(ghz3_compressed, KRAUS, shots=500, seed=0)
        distance = 0.5 * np.linalg.svd(exact - sampled, compute_uv=False).sum()
        assert distance < 0.08

    def test_outcome_probability_within_ci(self, ghz3):
        exact = exact_outcome_probability(ghz3, KRAUS)
        result = simulate_noisy(ghz3, KRAUS, shots=800, seed=0, track_state=True)
        low, high = wilson_interval(result.outcome_successes, result.shots, z=3.29)
        assert low <= exact <= high

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        gate_scale=st.floats(min_value=0.0, max_value=8.0),
        t1_scale=st.floats(min_value=0.2, max_value=10.0),
    )
    def test_outcome_estimator_converges_over_noise_knobs(self, gate_scale, t1_scale):
        """For any channel strength the sampled outcome probability must
        agree with the exact channel result within a 99.9% Wilson CI."""
        compiled = _compiled("ghz", 2)
        spec = NoiseSpec(
            gate_error_scale=gate_scale, t1_scale=t1_scale, idle_policy="kraus"
        )
        exact = exact_outcome_probability(compiled, spec)
        result = simulate_noisy(compiled, spec, shots=600, seed=0, track_state=True)
        low, high = wilson_interval(result.outcome_successes, result.shots, z=3.29)
        assert low <= exact <= high

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(gate_scale=st.floats(min_value=0.0, max_value=8.0))
    def test_no_error_estimator_matches_analytic(self, gate_scale):
        """The no-error fraction converges to the model's closed form
        (worst-case policy, 1-3 unit system)."""
        compiled = _compiled("bv", 3, "eqm")
        spec = NoiseSpec(gate_error_scale=gate_scale)
        analytic = spec.build(compiled.device).analytic_total_eps(compiled)
        result = simulate_noisy(compiled, spec, shots=1500, seed=0)
        low, high = result.confidence_interval(z=3.29)
        assert low <= analytic <= high


class TestBatchedMeasurementSampler:
    """The batched sampler's outcome distribution converges to the exact
    density's diagonal (the measurement statistics the channel prescribes)."""

    @settings(max_examples=5, deadline=None, derandomize=True)
    @given(
        gate_scale=st.floats(min_value=0.0, max_value=5.0),
        t1_scale=st.floats(min_value=0.3, max_value=8.0),
    )
    def test_sampled_outcomes_match_density_diagonal(self, gate_scale, t1_scale):
        from repro.noise import TrajectoryEngine
        from repro.noise.rng import uniform_streams
        from repro.simulation import BatchedMixedRadixState
        from repro.simulation.verify import register_dims

        shots = 1200
        compiled = _compiled("ghz", 2)
        spec = NoiseSpec(
            gate_error_scale=gate_scale, t1_scale=t1_scale, idle_policy="kraus"
        )
        engine = TrajectoryEngine(compiled, spec, track_state=True)
        vectors = np.stack(engine.final_vectors(shots, seed=0))
        state = BatchedMixedRadixState(register_dims(compiled), shots)
        state.set_vectors(vectors)  # renormalises residual Kraus-chain drift
        outcomes = state.sample_outcomes(uniform_streams(99, 0, shots, 1)[:, 0])
        diagonal = np.real(np.diag(reference_density(compiled, spec)))
        for index, probability in enumerate(diagonal):
            observed = int((outcomes == index).sum())
            low, high = wilson_interval(observed, shots, z=3.29)
            assert low <= probability <= high, (
                f"outcome {index}: exact {probability:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )

    def test_sampler_is_deterministic_for_fixed_draws(self, ghz3):
        from repro.noise import TrajectoryEngine
        from repro.noise.rng import uniform_streams
        from repro.simulation import BatchedMixedRadixState
        from repro.simulation.verify import register_dims

        engine = TrajectoryEngine(ghz3, KRAUS, track_state=True)
        vectors = np.stack(engine.final_vectors(64, seed=3))
        draws = uniform_streams(5, 0, 64, 1)[:, 0]
        first = BatchedMixedRadixState(register_dims(ghz3), 64)
        first.set_vectors(vectors)
        second = BatchedMixedRadixState(register_dims(ghz3), 64)
        second.set_vectors(vectors)
        assert (first.sample_outcomes(draws) == second.sample_outcomes(draws)).all()
