"""Tests for the parallel sweep execution engine and its compile cache."""

import pickle

import pytest

from repro.store import ArtifactStore
from repro.evaluation import run_strategies, strategy_sweep
from repro.evaluation.reporting import results_to_rows
from repro.runner import (
    CompileCache,
    DeviceSpec,
    ParallelExecutor,
    SweepPlan,
    SweepPoint,
    execute_plan,
    execute_point,
    freeze_kwargs,
    make_device,
)


class TestPlanEnumeration:
    def test_cartesian_order_is_benchmark_major(self):
        plan = SweepPlan.cartesian(("a", "b"), (4, 8), ("s1", "s2"))
        assert len(plan) == 8
        triples = [(p.benchmark, p.num_qubits, p.strategy) for p in plan]
        assert triples[:4] == [("a", 4, "s1"), ("a", 4, "s2"), ("a", 8, "s1"), ("a", 8, "s2")]
        assert triples[4][0] == "b"

    def test_single_and_concat(self):
        plan = SweepPlan.single("bv", 6, "eqm") + SweepPlan.single("bv", 8, "eqm")
        assert len(plan) == 2
        assert plan[0].num_qubits == 6
        assert plan[1].num_qubits == 8

    def test_points_carry_device_and_kwargs(self):
        spec = DeviceSpec(kind="ring", t1_scale=2.0)
        plan = SweepPlan.cartesian(
            ("bv",), (6,), ("ec",), device=spec,
            strategy_kwargs={"max_pairs": 2}, seed=3,
        )
        point = plan[0]
        assert point.device == spec
        assert point.seed == 3
        assert dict(point.strategy_kwargs) == {"max_pairs": 2}

    def test_describe_mentions_point_count(self):
        plan = SweepPlan.cartesian(("bv", "cnu"), (6,), ("eqm",))
        assert "2 points" in plan.describe()

    def test_freeze_kwargs_sorts_and_handles_none(self):
        assert freeze_kwargs(None) == ()
        assert freeze_kwargs({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_points_are_hashable_and_picklable(self):
        point = SweepPoint("bv", 6, "eqm", device=DeviceSpec(kind="grid"))
        assert hash(point) == hash(pickle.loads(pickle.dumps(point)))


class TestDeviceSpec:
    def test_grid_is_sized_to_circuit(self):
        # The old device_for built (and discarded) a half-sized grid first;
        # the spec builds the circuit-sized grid directly.
        assert DeviceSpec(kind="grid").build(12).num_units == 12
        assert make_device("grid", 12).num_units == 12

    def test_t1_knobs(self):
        device = DeviceSpec(kind="grid", t1_scale=10.0, ququart_t1_ratio=0.5).build(9)
        assert device.qubit_t1_us == pytest.approx(1635.0)
        assert device.ququart_t1_us == pytest.approx(817.5)

    def test_qubit_error_scale_leaves_ququart_gates_alone(self):
        device = DeviceSpec(kind="grid", qubit_error_scale=0.1).build(6)
        assert device.durations.fidelity("cx2") == pytest.approx(0.999)
        assert device.durations.fidelity("cx0q") == pytest.approx(0.99)

    def test_overrides_apply(self):
        spec = DeviceSpec(
            kind="grid",
            duration_overrides=(("cx0_in", 251.0),),
            fidelity_overrides=(("cx0_in", 0.5),),
        )
        device = spec.build(6)
        assert device.durations.duration("cx0_in") == 251.0
        assert device.durations.fidelity("cx0_in") == 0.5

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            make_device("torus", 6)


class TestCompileCache:
    def _point(self, **overrides):
        fields = {"benchmark": "bv", "num_qubits": 6, "strategy": "qubit_only"}
        fields.update(overrides)
        return SweepPoint(**fields)

    def test_roundtrip(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = self._point()
        assert cache.get(point) is None
        result = execute_point(point)
        cache.put(point, result)
        cached = cache.get(point)
        assert cached is not None
        assert cached.report == result.report
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_key_changes_with_strategy_kwargs_and_device(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        base = self._point()
        assert cache.key(base) == cache.key(self._point())
        assert cache.key(base) != cache.key(self._point(strategy_kwargs=(("max_pairs", 1),)))
        assert cache.key(base) != cache.key(self._point(device=DeviceSpec(kind="ring")))
        assert cache.key(base) != cache.key(
            self._point(device=DeviceSpec(kind="grid", t1_scale=2.0))
        )
        assert cache.key(base) != cache.key(self._point(seed=1))

    def test_key_changes_when_code_changes(self, tmp_path, monkeypatch):
        import repro.runner.cache as cache_module

        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        before = cache.key(self._point())
        monkeypatch.setattr(cache_module, "code_fingerprint", lambda: "different-code")
        after = cache.key(self._point())
        assert before != after

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = self._point()
        blob = cache.put(point, execute_point(point))
        blob.write_bytes(b"not a pickle")
        assert cache.get(point) is None
        assert not blob.exists()

    def test_clear(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = self._point()
        cache.put(point, execute_point(point))
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert len(cache) == 0


BELL_QASM = (
    'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
    "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
)


class TestQasmPoints:
    def test_from_qasm_sizes_and_names_the_point(self):
        point = SweepPoint.from_qasm(BELL_QASM, "eqm", name="bell")
        assert point.benchmark == "bell"
        assert point.num_qubits == 2
        assert point.qasm == BELL_QASM

    def test_payload_carries_a_digest_not_the_text(self):
        payload = SweepPoint.from_qasm(BELL_QASM, "eqm").payload()
        assert payload["qasm_sha256"] is not None
        assert len(payload["qasm_sha256"]) == 64
        assert BELL_QASM not in str(payload)
        assert SweepPoint("bv", 6, "eqm").payload()["qasm_sha256"] is None

    def test_identical_text_shares_a_key_and_edits_invalidate(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        base = SweepPoint.from_qasm(BELL_QASM, "eqm", name="bell")
        twin = SweepPoint.from_qasm(BELL_QASM, "eqm", name="bell")
        edited = SweepPoint.from_qasm(BELL_QASM + "x q[0];\n", "eqm", name="bell")
        assert cache.key(base) == cache.key(twin)
        assert cache.key(base) != cache.key(edited)

    def test_qasm_points_execute_and_cache(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = SweepPoint.from_qasm(BELL_QASM, "qubit_only", name="bell")
        executor = ParallelExecutor(workers=1, cache=cache)
        first = executor.run(SweepPlan((point,)))
        assert executor.last_stats.executed == 1
        second = executor.run(SweepPlan((point,)))
        assert executor.last_stats.cache_hits == 1
        assert first[0].report == second[0].report
        assert first[0].compiled.circuit_name == "bell"

    def test_qasm_points_are_picklable(self):
        point = SweepPoint.from_qasm(BELL_QASM, "eqm", name="bell")
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.execute().report == point.execute().report

    def test_from_qasm_file_uses_the_stem(self, tmp_path):
        source = tmp_path / "teleport_demo.qasm"
        source.write_text(BELL_QASM)
        point = SweepPoint.from_qasm_file(source, "eqm")
        assert point.benchmark == "teleport_demo"

    def test_qasm_and_benchmark_points_mix_in_one_plan(self):
        plan = SweepPlan((
            SweepPoint.from_qasm(BELL_QASM, "qubit_only", name="bell"),
            SweepPoint("bv", 4, "qubit_only"),
        ))
        results = execute_plan(plan, workers=2)
        assert [r.benchmark for r in results] == ["bell", "bv"]


class TestParallelExecutor:
    PLAN = SweepPlan.cartesian(("bv", "cuccaro"), (6, 8), ("qubit_only", "eqm"))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_serial_and_parallel_results_identical(self):
        serial = execute_plan(self.PLAN, workers=1)
        parallel = execute_plan(self.PLAN, workers=2)
        assert [r.report for r in serial] == [r.report for r in parallel]

    def test_results_come_back_in_plan_order(self):
        results = execute_plan(self.PLAN, workers=2)
        for point, result in zip(self.PLAN, results):
            assert (result.benchmark, result.num_qubits, result.strategy) == (
                point.benchmark, point.num_qubits, point.strategy,
            )

    def test_second_cached_run_recompiles_nothing(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        executor = ParallelExecutor(workers=1, cache=cache)
        first = executor.run(self.PLAN)
        assert executor.last_stats.executed == len(self.PLAN)
        second = executor.run(self.PLAN)
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == len(self.PLAN)
        assert [r.report for r in first] == [r.report for r in second]

    def test_partial_cache_only_compiles_misses(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        ParallelExecutor(workers=1, cache=cache).run(SweepPlan((self.PLAN[0],)))
        executor = ParallelExecutor(workers=1, cache=cache)
        executor.run(self.PLAN)
        assert executor.last_stats.cache_hits == 1
        assert executor.last_stats.executed == len(self.PLAN) - 1


class TestEvaluationIntegration:
    def test_run_strategies_engine_matches_legacy(self, tmp_path):
        legacy = run_strategies("cnu", 9, strategies=("qubit_only", "eqm"))
        engine = run_strategies(
            "cnu", 9, strategies=("qubit_only", "eqm"),
            cache=CompileCache.from_store(ArtifactStore(tmp_path)),
        )
        assert {name: r.report for name, r in legacy.items()} == {
            name: r.report for name, r in engine.items()
        }

    def test_strategy_sweep_parallel_rows_byte_identical(self):
        kwargs = {"benchmarks": ("bv",), "sizes": (6, 8),
                  "strategies": ("qubit_only", "eqm")}
        serial = strategy_sweep(**kwargs)
        parallel = strategy_sweep(workers=2, **kwargs)
        assert results_to_rows(serial) == results_to_rows(parallel)
