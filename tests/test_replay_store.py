"""Regression tests for replay's store-root contract.

The bug under test: ``ReplayBackend._lookup`` used to hardcode the
process-default cache directory, so library callers against a non-default
store silently missed (or were served another store's artifacts), and the
CLI papered over it by mutating ``os.environ[CACHE_DIR_ENV]``
process-wide.  Now the executor and the sweep service pin replay points
to the caller's store root (:func:`repro.runner.points.pin_store_root`)
— with content keys unchanged and no environment mutation anywhere.
"""

import dataclasses
import json
import os

import pytest

from repro.backends import ReplayMissError, get_backend
from repro.cli import main
from repro.evaluation import validate_eps
from repro.noise import NoisePoint, NoiseSpec, shot_plan
from repro.runner import (
    CompileCache,
    ParallelExecutor,
    SweepPoint,
    execute_plan,
)
from repro.runner.points import pin_store_root
from repro.service import SweepService
from repro.store import ArtifactStore

TABLE1 = NoiseSpec.from_preset("table1")


def _warm_store(root, *points):
    """Execute ``points`` on their own backend into the store at ``root``."""
    cache = CompileCache.from_store(ArtifactStore(root))
    return cache, execute_plan(list(points), cache=cache)


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    return dict(os.environ)


class TestPinStoreRoot:
    """The pinning helper: replay points only, content keys untouched."""

    def test_pins_replay_points_without_changing_the_key(self, tmp_path):
        point = SweepPoint("bv", 4, "eqm", backend="replay")
        pinned = pin_store_root(point, tmp_path)
        assert pinned.cache_root == str(tmp_path)
        assert pinned.key() == point.key()
        assert pinned.payload() == point.payload()
        assert "cache_root" not in pinned.payload()

    def test_leaves_non_store_reading_backends_alone(self, tmp_path):
        for backend in ("trajectory", "external-sim"):
            point = SweepPoint("bv", 4, "eqm", backend=backend)
            assert pin_store_root(point, tmp_path) is point
            assert not get_backend(backend).reads_store
        assert get_backend("replay").reads_store

    def test_pins_noise_points_through_the_compile_point(self, tmp_path):
        compile_point = SweepPoint("bv", 4, "eqm", backend="replay")
        noise_point = NoisePoint(compile_point=compile_point, noise=TABLE1,
                                 shots=100, seed=3)
        pinned = pin_store_root(noise_point, tmp_path)
        assert isinstance(pinned, NoisePoint)
        assert pinned.cache_root == str(tmp_path)
        assert pinned.key() == noise_point.key()

    def test_repinning_the_same_root_is_a_noop(self, tmp_path):
        point = SweepPoint("bv", 4, "eqm", backend="replay")
        pinned = pin_store_root(point, tmp_path)
        assert pin_store_root(pinned, tmp_path) is pinned

    def test_spec_round_trips_the_pin(self, tmp_path):
        point = pin_store_root(SweepPoint("bv", 4, "eqm", backend="replay"), tmp_path)
        rebuilt = SweepPoint.from_spec(point.spec())
        assert rebuilt == point


class TestReplayBackendLookup:
    """The backend honours a point's pinned root, falling back to default."""

    def test_pinned_point_serves_from_a_custom_root(self, tmp_path, clean_env,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)  # make the cold default root local
        store_root = tmp_path / "warm"
        point = SweepPoint("bv", 4, "eqm")
        _, [warm] = _warm_store(store_root, point)
        replay = dataclasses.replace(point, backend="replay")
        pinned = pin_store_root(replay, store_root)
        served = pinned.execute()
        assert served.report == warm.report
        # the unpinned twin must miss: the default root is cold
        with pytest.raises(ReplayMissError, match="no stored result"):
            replay.execute()
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_pinned_miss_names_the_pinned_root(self, tmp_path):
        replay = pin_store_root(
            SweepPoint("bv", 4, "eqm", backend="replay"), tmp_path / "nowhere"
        )
        with pytest.raises(ReplayMissError, match="nowhere"):
            replay.execute()

    def test_executor_pins_pending_replay_points(self, tmp_path, clean_env,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        store_root = tmp_path / "warm"
        point = SweepPoint("ghz", 4, "eqm")
        cache, [warm] = _warm_store(store_root, point)
        replay = dataclasses.replace(point, backend="replay")
        # drop the cache layer's hit so the executor must dispatch the
        # point — the pinned lookup inside the backend has to serve it
        class NoHitCache(CompileCache):
            def get(self, _point):
                return None
        executor = ParallelExecutor(cache=NoHitCache.from_store(ArtifactStore(store_root)))
        [served] = executor.run([replay])
        assert executor.last_stats.executed == 1
        assert served.report == warm.report
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_shot_chunks_replay_from_a_custom_root(self, tmp_path, clean_env,
                                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        store_root = tmp_path / "warm"
        compile_point = SweepPoint("bv", 4, "eqm")
        cache = CompileCache.from_store(ArtifactStore(store_root))
        plan = shot_plan(compile_point, TABLE1, 400, seed=7, chunk_size=150)
        chunks = execute_plan(plan, cache=cache)
        replay_plan = [
            dataclasses.replace(
                p, compile_point=dataclasses.replace(p.compile_point, backend="replay")
            )
            for p in plan
        ]
        executor = ParallelExecutor(cache=cache)
        replayed = executor.run(replay_plan)
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == len(replay_plan)
        assert replayed == chunks


class TestValidateEpsReplay:
    """`validate_eps(backend="replay", cache=...)` resolves the caller's store."""

    KWARGS = dict(benchmarks=("bv",), sizes=(4,), strategies=("qubit_only",),
                  shots=600, seed=1)

    def test_replay_against_a_custom_store(self, tmp_path, clean_env, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = CompileCache.from_store(ArtifactStore(tmp_path / "warm"))
        warm = validate_eps(cache=cache, **self.KWARGS)
        replayed = validate_eps(cache=cache, backend="replay", **self.KWARGS)
        assert [row.as_dict() for row in replayed] == [row.as_dict() for row in warm]
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_replay_against_a_cold_custom_store_misses(self, tmp_path, clean_env,
                                                       monkeypatch):
        monkeypatch.chdir(tmp_path)
        # warm only the *default* root: a cold custom store must miss
        # loudly instead of silently serving the default root's artifacts
        default_cache = CompileCache.from_store(ArtifactStore(tmp_path / ".repro_cache"))
        validate_eps(cache=default_cache, **self.KWARGS)
        cold = CompileCache.from_store(ArtifactStore(tmp_path / "cold"))
        with pytest.raises(ReplayMissError, match="cold"):
            validate_eps(cache=cold, backend="replay", **self.KWARGS)
        assert "REPRO_CACHE_DIR" not in os.environ


class TestSweepServiceReplay:
    """The service resolves replay against its own store, not the default."""

    def test_replay_job_serves_from_the_service_store(self, tmp_path, clean_env,
                                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = ArtifactStore(tmp_path / "service_store")
        service = SweepService(store=store)
        point = SweepPoint("bv", 4, "eqm")
        job = service.submit([point])
        service.wait(job)
        assert service.status(job).state == "done"
        replay = dataclasses.replace(point, backend="replay")
        job2 = service.submit([replay])
        service.wait(job2)
        status = service.status(job2)
        assert status.state == "done"
        assert status.executed == 0
        assert status.cache_hits == 1
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_replay_job_against_an_empty_store_misses_loudly(
        self, tmp_path, clean_env, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        # warm the default root so a store-root leak would silently serve
        point = SweepPoint("bv", 4, "eqm")
        _warm_store(tmp_path / ".repro_cache", point)
        empty = ArtifactStore(tmp_path / "empty_store")
        service = SweepService(store=empty)
        job = service.submit([dataclasses.replace(point, backend="replay")])
        service.wait(job)
        status = service.status(job)
        assert status.state == "failed"
        assert "ReplayMissError" in status.error
        assert "empty_store" in status.error
        assert "REPRO_CACHE_DIR" not in os.environ


class TestReplayCLI:
    """CLI behaviour unchanged — minus the process-wide env mutation."""

    def test_replay_sweep_no_longer_mutates_the_environment(
        self, capsys, tmp_path, clean_env, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "sweep.json"
        cache_dir = tmp_path / "custom_cache"
        base = ["sweep", "--benchmarks", "bv", "--sizes", "4",
                "--strategies", "qubit_only",
                "--cache-dir", str(cache_dir), "--json", str(target)]
        assert main(base) == 0
        warm = json.loads(target.read_text())
        capsys.readouterr()
        assert main(base + ["--backend", "replay"]) == 0
        capsys.readouterr()
        replayed = json.loads(target.read_text())
        assert replayed["rows"] == warm["rows"]
        assert replayed["cache"] == {"enabled": True, "hits": 1, "misses": 0}
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_replay_validate_eps_cli_with_custom_cache_dir(
        self, capsys, tmp_path, clean_env, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        cache_dir = tmp_path / "custom_cache"
        base = ["validate-eps", "--smoke", "--cache-dir", str(cache_dir)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--backend", "replay"]) == 0
        out = capsys.readouterr().out
        assert "validated" in out.lower() or "ok" in out.lower()
        assert "REPRO_CACHE_DIR" not in os.environ
