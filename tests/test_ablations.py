"""Tests for the ablation studies."""


from repro.evaluation import (
    internal_gate_ablation,
    merging_ablation,
    uniform_routing_ablation,
)


class TestMergingAblation:
    def test_merging_never_increases_ops(self):
        result = merging_ablation(benchmark="qaoa_torus", num_qubits=12)
        assert result.baseline.num_ops <= result.ablated.num_ops
        # Merging only helps when at least one pair of single-qubit gates was
        # actually combined.
        if result.baseline.num_ops < result.ablated.num_ops:
            assert result.baseline.gate_eps >= result.ablated.gate_eps

    def test_reports_carry_metadata(self):
        result = merging_ablation(benchmark="bv", num_qubits=8)
        assert result.benchmark == "bv"
        assert result.strategy == "eqm"
        assert result.baseline.strategy_name == "eqm"


class TestInternalGateAblation:
    def test_removing_internal_advantage_hurts_gate_eps(self):
        result = internal_gate_ablation(benchmark="cuccaro", num_qubits=12, strategy="rb")
        # Internal CX gates drop from 99.9% to 99% success, so the compressed
        # circuit's gate EPS must fall.
        assert result.ablated.gate_eps < result.baseline.gate_eps
        assert result.gate_eps_ratio < 1.0

    def test_removing_internal_advantage_slows_the_circuit(self):
        result = internal_gate_ablation(benchmark="cuccaro", num_qubits=12, strategy="rb")
        assert result.makespan_ratio >= 1.0


class TestUniformRoutingAblation:
    def test_runs_and_reports_both_sides(self):
        result = uniform_routing_ablation(benchmark="qaoa_random", num_qubits=12)
        assert 0 < result.baseline.gate_eps <= 1
        assert 0 < result.ablated.gate_eps <= 1
        assert result.baseline.num_ops > 0
        assert result.ablated.num_ops > 0

    def test_ratios_are_finite(self):
        result = uniform_routing_ablation(benchmark="qaoa_random", num_qubits=10)
        assert result.gate_eps_ratio != float("inf")
        assert result.makespan_ratio != float("inf")
