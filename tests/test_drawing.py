"""Tests for the ASCII circuit and timeline renderers."""

import pytest

from repro.arch import Device, grid_topology
from repro.circuits import QuantumCircuit
from repro.circuits.drawing import draw_circuit, draw_compiled_timeline
from repro.compiler import QompressCompiler
from repro.compression import get_strategy
from repro.workloads import cuccaro_adder


class TestDrawCircuit:
    def test_one_row_per_qubit(self, ghz_circuit):
        text = draw_circuit(ghz_circuit)
        lines = text.splitlines()
        assert len(lines) == ghz_circuit.num_qubits
        assert lines[0].startswith("q0:")

    def test_controlled_gate_symbols(self, bell_circuit):
        text = draw_circuit(bell_circuit)
        lines = text.splitlines()
        assert "H" in lines[0]
        assert "*" in lines[0]
        assert "X" in lines[1]

    def test_swap_and_barrier_symbols(self):
        circuit = QuantumCircuit(2).swap(0, 1).barrier().measure(0)
        text = draw_circuit(circuit)
        assert text.count("x") >= 2
        assert "|" in text
        assert "M" in text

    def test_toffoli_rendering(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        lines = draw_circuit(circuit).splitlines()
        assert "*" in lines[0]
        assert "*" in lines[1]
        assert "X" in lines[2]

    def test_truncation_of_long_circuits(self):
        circuit = QuantumCircuit(2)
        for _ in range(200):
            circuit.cx(0, 1)
        text = draw_circuit(circuit, max_width=60)
        for line in text.splitlines():
            assert len(line) <= 70
            assert line.endswith("...")


class TestDrawTimeline:
    @pytest.fixture
    def compiled(self):
        device = Device(topology=grid_topology(2, 3))
        return QompressCompiler(device, get_strategy("eqm")).compile(cuccaro_adder(10))

    def test_one_row_per_unit(self, compiled):
        text = draw_compiled_timeline(compiled)
        lines = text.splitlines()
        assert len(lines) == compiled.device.num_units

    def test_ququart_units_labelled(self, compiled):
        text = draw_compiled_timeline(compiled)
        assert "[Q4]" in text
        assert any(symbol in text for symbol in ("C", "S", "1"))

    def test_bucket_validation(self, compiled):
        with pytest.raises(ValueError):
            draw_compiled_timeline(compiled, bucket_ns=0.0)

    def test_width_limit(self, compiled):
        text = draw_compiled_timeline(compiled, bucket_ns=10.0, max_width=50)
        for line in text.splitlines():
            assert len(line) <= 60
