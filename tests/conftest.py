"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import Device, grid_topology, linear_topology
from repro.circuits import QuantumCircuit


@pytest.fixture
def grid_device() -> Device:
    """A 2x3 grid device (6 units, up to 12 logical qubits)."""
    return Device(topology=grid_topology(2, 3))


@pytest.fixture
def line_device() -> Device:
    """A 4-unit linear device."""
    return Device(topology=linear_topology(4))


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """Two-qubit Bell-pair preparation."""
    circuit = QuantumCircuit(2, "bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz_circuit() -> QuantumCircuit:
    """Five-qubit GHZ preparation."""
    circuit = QuantumCircuit(5, "ghz")
    circuit.h(0)
    for qubit in range(4):
        circuit.cx(qubit, qubit + 1)
    return circuit


@pytest.fixture
def layered_circuit() -> QuantumCircuit:
    """A circuit with a known moment structure used by depth/weight tests."""
    circuit = QuantumCircuit(4, "layered")
    circuit.h(0)
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.cx(1, 2)
    circuit.x(3)
    return circuit


def make_random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    include_swaps: bool = True,
) -> QuantumCircuit:
    """Random 1q/2q circuit generator used by several test modules."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"random-{num_qubits}-{seed}")
    single_gates = ["x", "h", "z", "s", "t"]
    for _ in range(num_gates):
        choice = rng.random()
        if choice < 0.4:
            circuit.add(str(rng.choice(single_gates)), int(rng.integers(num_qubits)))
        elif choice < 0.9 or not include_swaps:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.swap(int(a), int(b))
    return circuit


@pytest.fixture
def random_circuit_factory():
    """Factory fixture wrapping :func:`make_random_circuit`."""
    return make_random_circuit
