"""Tests for the QompressCompiler pipeline."""

import pytest

from repro.arch import Device, linear_topology
from repro.circuits import QuantumCircuit
from repro.compiler import QompressCompiler
from repro.compiler.plan import CompressionPlan
from repro.compression import FullQuquart, QubitOnly, get_strategy
from repro.gates import GateStyle
from tests.conftest import make_random_circuit


class TestCompile:
    def test_default_strategy_is_eqm_like(self, grid_device, ghz_circuit):
        compiled = QompressCompiler(grid_device).compile(ghz_circuit)
        assert compiled.strategy_name == "eqm"
        assert compiled.num_logical_qubits == 5

    def test_qubit_only_uses_no_ququarts(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=1)
        compiled = QompressCompiler(grid_device, QubitOnly()).compile(circuit)
        assert compiled.ququart_units == frozenset()
        assert compiled.compressed_pairs == ()
        styles = set(compiled.style_counts())
        assert all(not style.touches_ququart for style in styles)

    def test_all_ops_scheduled(self, grid_device):
        circuit = make_random_circuit(8, 30, seed=2)
        compiled = QompressCompiler(grid_device, get_strategy("eqm")).compile(circuit)
        assert all(op.start_ns >= 0.0 for op in compiled.ops)
        assert compiled.makespan_ns > 0.0

    def test_compressed_pairs_reported(self, line_device):
        # 7 qubits on 4 units force the EQM mapper to create pairs.
        circuit = make_random_circuit(7, 25, seed=3)
        compiled = QompressCompiler(line_device, get_strategy("eqm")).compile(circuit)
        assert len(compiled.compressed_pairs) >= 3
        assert len(compiled.ququart_units) == len(compiled.compressed_pairs)

    def test_toffoli_circuits_are_lowered(self, grid_device):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        compiled = QompressCompiler(grid_device, QubitOnly()).compile(circuit)
        assert compiled.num_ops > 1
        assert compiled.lowered_circuit is not None
        assert all(gate.num_qubits <= 2 for gate in compiled.lowered_circuit)

    def test_compile_with_explicit_plan(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=4)
        compiler = QompressCompiler(grid_device)
        plan = CompressionPlan(pairs=((0, 1), (2, 3)))
        compiled = compiler.compile_with_plan(circuit, plan, strategy_name="manual")
        assert compiled.strategy_name == "manual"
        assert (0, 1) in compiled.compressed_pairs
        assert (2, 3) in compiled.compressed_pairs

    def test_capacity_doubles_with_compression(self):
        device = Device(topology=linear_topology(3))
        circuit = make_random_circuit(6, 15, seed=5)
        compiled = QompressCompiler(device, get_strategy("eqm")).compile(circuit)
        assert compiled.num_logical_qubits == 6
        assert len(compiled.ququart_units) == 3

    def test_summary_keys(self, grid_device, ghz_circuit):
        compiled = QompressCompiler(grid_device).compile(ghz_circuit)
        summary = compiled.summary()
        for key in ("circuit", "strategy", "ops", "makespan_ns", "internal_cx"):
            assert key in summary


class TestCompressionPlanValidation:
    def test_duplicate_qubit_rejected(self):
        with pytest.raises(ValueError):
            CompressionPlan(pairs=((0, 1), (1, 2)))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            CompressionPlan(pairs=((2, 2),))

    def test_qubit_only_excludes_pairing(self):
        with pytest.raises(ValueError):
            CompressionPlan(qubit_only=True, allow_free_pairing=True)

    def test_paired_qubits_property(self):
        plan = CompressionPlan(pairs=((0, 3), (1, 2)))
        assert plan.paired_qubits == {0, 1, 2, 3}


class TestFullQuquartBaseline:
    def test_fq_emits_encode_ops(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=6)
        compiled = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        styles = compiled.style_counts()
        assert styles[GateStyle.ENCODE] >= 3  # one per pair at minimum

    def test_fq_external_ops_decode_and_reencode(self, grid_device):
        # Force two pairs that must interact across ququart boundaries.
        circuit = QuantumCircuit(4)
        for _ in range(3):
            circuit.cx(0, 1)
            circuit.cx(2, 3)
        circuit.cx(0, 2)
        compiled = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        styles = compiled.style_counts()
        assert styles[GateStyle.DECODE] >= 2
        # The external interaction itself runs as a bare-qubit CX.
        assert styles[GateStyle.QUBIT_QUBIT_CX] >= 1

    def test_fq_internal_ops_are_fast_internal_gates(self, grid_device):
        circuit = QuantumCircuit(4)
        for _ in range(4):
            circuit.cx(0, 1)
        compiled = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        styles = compiled.style_counts()
        assert styles[GateStyle.INTERNAL_CX] >= 4

    def test_fq_requires_pairs(self, grid_device):
        compiler = QompressCompiler(grid_device)
        circuit = make_random_circuit(4, 10, seed=7)
        with pytest.raises(ValueError, match="explicit pairing"):
            compiler.compile_with_plan(
                circuit, CompressionPlan(full_ququart=True), strategy_name="fq"
            )

    def test_fq_uses_more_ops_than_mixed_radix(self, grid_device):
        circuit = make_random_circuit(8, 40, seed=8)
        fq = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        eqm = QompressCompiler(grid_device, get_strategy("eqm")).compile(circuit)
        assert fq.num_ops > eqm.num_ops
