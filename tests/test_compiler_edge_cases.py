"""Edge-case and stress tests for the compiler across device families."""

import pytest

from repro.arch import Device, heavy_hex_topology, linear_topology, ring_topology
from repro.circuits import QuantumCircuit
from repro.compiler import QompressCompiler
from repro.compression import FullQuquart, get_strategy
from repro.evaluation import device_for
from repro.metrics import evaluate_eps
from repro.workloads import build_benchmark
from tests.conftest import make_random_circuit


class TestUnusualCircuits:
    def test_single_qubit_circuit(self, grid_device):
        circuit = QuantumCircuit(1).h(0).t(0).h(0).measure(0)
        compiled = QompressCompiler(grid_device).compile(circuit)
        assert compiled.num_ops == 4
        assert compiled.makespan_ns > 0

    def test_gate_free_circuit(self, grid_device):
        circuit = QuantumCircuit(3)
        compiled = QompressCompiler(grid_device).compile(circuit)
        assert compiled.num_ops == 0
        assert compiled.makespan_ns == 0.0
        report = evaluate_eps(compiled)
        assert report.gate_eps == pytest.approx(1.0)
        assert report.coherence_eps == pytest.approx(1.0)

    def test_idle_qubits_are_still_placed(self, grid_device):
        circuit = QuantumCircuit(6).cx(0, 1)
        compiled = QompressCompiler(grid_device, get_strategy("qubit_only")).compile(circuit)
        assert set(compiled.initial_placement) == set(range(6))

    def test_measurement_only_circuit(self, grid_device):
        circuit = QuantumCircuit(4).measure_all()
        compiled = QompressCompiler(grid_device).compile(circuit)
        assert compiled.num_ops == 4
        assert all(op.gate == "measure" for op in compiled.ops)

    def test_barriers_are_dropped(self, grid_device):
        circuit = QuantumCircuit(3).barrier().x(0).barrier(1, 2)
        compiled = QompressCompiler(grid_device).compile(circuit)
        assert all(op.gate != "barrier" for op in compiled.ops)

    def test_repeated_compilation_is_deterministic(self, grid_device):
        circuit = make_random_circuit(8, 30, seed=21)
        compiler = QompressCompiler(grid_device, get_strategy("eqm"))
        first = compiler.compile(circuit)
        second = compiler.compile(circuit)
        assert [op.gate for op in first.ops] == [op.gate for op in second.ops]
        assert first.initial_placement == second.initial_placement
        assert first.makespan_ns == pytest.approx(second.makespan_ns)


class TestDeviceFamilies:
    @pytest.mark.parametrize("topology_builder", [
        lambda: ring_topology(65),
        lambda: heavy_hex_topology(),
        lambda: linear_topology(20),
    ])
    @pytest.mark.parametrize("strategy", ["qubit_only", "eqm", "rb"])
    def test_benchmarks_compile_on_every_family(self, topology_builder, strategy):
        device = Device(topology=topology_builder())
        circuit = build_benchmark("cnu", 13, seed=0)
        compiled = QompressCompiler(device, get_strategy(strategy)).compile(circuit)
        report = evaluate_eps(compiled)
        assert 0 < report.gate_eps <= 1
        assert compiled.makespan_ns > 0

    def test_low_connectivity_needs_more_communication(self):
        circuit = build_benchmark("qaoa_random", 16, seed=2)
        grid = QompressCompiler(device_for("grid", 16), get_strategy("qubit_only")).compile(circuit)
        ring = QompressCompiler(
            Device(topology=ring_topology(16)), get_strategy("qubit_only")
        ).compile(circuit)
        assert ring.communication_op_count() >= grid.communication_op_count()

    def test_sparse_circuit_on_large_device(self):
        # A small circuit on the 65-unit heavy-hex device: most units idle.
        device = Device(topology=heavy_hex_topology())
        circuit = make_random_circuit(5, 15, seed=3)
        compiled = QompressCompiler(device, get_strategy("eqm")).compile(circuit)
        used_units = {slot[0] for slot in compiled.initial_placement.values()}
        assert len(used_units) <= 5
        assert evaluate_eps(compiled).gate_eps > 0


class TestFullQuquartInvariants:
    def test_moves_track_final_placement(self, grid_device):
        circuit = make_random_circuit(8, 30, seed=4, include_swaps=False)
        compiled = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        position = dict(compiled.initial_placement)
        for op in compiled.ops:
            for qubit, slot in op.moves.items():
                position[qubit] = slot
        assert position == compiled.final_placement

    def test_fq_schedules_every_op(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=5, include_swaps=False)
        compiled = QompressCompiler(grid_device, FullQuquart()).compile(circuit)
        assert all(op.start_ns >= 0 for op in compiled.ops)
        # Encodes happen before anything else touches their units.
        first_op_per_unit: dict[int, str] = {}
        for op in sorted(compiled.ops, key=lambda o: o.start_ns):
            for unit in op.units:
                first_op_per_unit.setdefault(unit, op.gate)
        for unit in compiled.ququart_units:
            assert first_op_per_unit[unit] in ("enc", "x", "measure")


class TestRoutedInvariants:
    @pytest.mark.parametrize("strategy", ["qubit_only", "eqm", "rb", "awe", "pp"])
    def test_final_placement_is_injective(self, grid_device, strategy):
        circuit = make_random_circuit(6, 40, seed=6)
        compiled = QompressCompiler(grid_device, get_strategy(strategy)).compile(circuit)
        slots = list(compiled.final_placement.values())
        assert len(set(slots)) == len(slots)

    @pytest.mark.parametrize("strategy", ["qubit_only", "eqm"])
    def test_ops_only_touch_enabled_units(self, grid_device, strategy):
        circuit = make_random_circuit(6, 40, seed=7)
        compiled = QompressCompiler(grid_device, get_strategy(strategy)).compile(circuit)
        for op in compiled.ops:
            for unit, slot in op.slots:
                if slot == 1:
                    assert unit in compiled.ququart_units
