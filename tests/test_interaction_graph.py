"""Tests for the expanded ququart slot graph (Section 4.1)."""

import pytest

from repro.arch import expanded_slot_graph, grid_topology, linear_topology, slot_neighbors


class TestExpandedGraph:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3)])
    def test_node_and_edge_counts_match_paper_formula(self, rows, cols):
        topology = grid_topology(rows, cols)
        graph = expanded_slot_graph(topology)
        V = topology.num_units
        E = topology.num_links
        # Section 4.1: 2V nodes and 4E + V edges.
        assert graph.number_of_nodes() == 2 * V
        assert graph.number_of_edges() == 4 * E + V

    def test_internal_edges_flagged(self):
        graph = expanded_slot_graph(linear_topology(3))
        assert graph.edges[(0, 0), (0, 1)]["internal"] is True
        assert graph.edges[(0, 0), (1, 0)]["internal"] is False

    def test_each_slot_connects_to_both_neighbour_slots(self):
        graph = expanded_slot_graph(linear_topology(2))
        neighbors = set(graph.neighbors((0, 0)))
        assert neighbors == {(0, 1), (1, 0), (1, 1)}

    def test_connectivity_count_matches_paper_statement(self):
        # "if a ququart was connected to n other ququarts, each encoded qubit
        # is connected to 2n + 1 other encoded qubits"
        topology = grid_topology(3, 3)
        graph = expanded_slot_graph(topology)
        for unit in range(topology.num_units):
            n = len(topology.neighbors(unit))
            assert graph.degree((unit, 0)) == 2 * n + 1
            assert graph.degree((unit, 1)) == 2 * n + 1


class TestSlotNeighbors:
    def test_includes_partner_slot_and_adjacent_units(self):
        topology = linear_topology(3)
        neighbors = slot_neighbors(topology, (1, 0))
        assert (1, 1) in neighbors
        assert (0, 0) in neighbors and (0, 1) in neighbors
        assert (2, 0) in neighbors and (2, 1) in neighbors

    def test_qubit_only_mode_excludes_secondary_slots(self):
        topology = linear_topology(3)
        neighbors = slot_neighbors(topology, (1, 0), include_secondary=False)
        assert all(slot[1] == 0 for slot in neighbors)
        assert (0, 0) in neighbors and (2, 0) in neighbors

    def test_invalid_slot_position(self):
        with pytest.raises(ValueError):
            slot_neighbors(linear_topology(2), (0, 2))
