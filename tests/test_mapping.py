"""Tests for the initial mapping pass."""

import pytest

from repro.arch import Device, linear_topology
from repro.circuits import QuantumCircuit
from repro.compiler import initial_mapping
from repro.compiler.mapping import MappingError
from tests.conftest import make_random_circuit


def _assert_valid_placement(placement, device, circuit):
    assert set(placement) == set(range(circuit.num_qubits))
    slots = list(placement.values())
    assert len(set(slots)) == len(slots), "two qubits share a slot"
    for unit, slot in slots:
        assert 0 <= unit < device.num_units
        assert slot in (0, 1)


class TestQubitOnlyMapping:
    def test_every_qubit_gets_a_primary_slot(self, grid_device):
        circuit = make_random_circuit(6, 20, seed=1)
        placement, ququarts = initial_mapping(circuit, grid_device, qubit_only=True)
        _assert_valid_placement(placement, grid_device, circuit)
        assert all(slot == 0 for _unit, slot in placement.values())
        assert ququarts == frozenset()

    def test_capacity_error_when_circuit_too_large(self, line_device):
        circuit = make_random_circuit(5, 10, seed=2)
        with pytest.raises(MappingError, match="only supports"):
            initial_mapping(circuit, line_device, qubit_only=True)

    def test_qubit_only_conflicts_with_pairing(self, grid_device):
        circuit = make_random_circuit(4, 5, seed=0)
        with pytest.raises(ValueError):
            initial_mapping(circuit, grid_device, qubit_only=True, allow_free_pairing=True)

    def test_interacting_qubits_placed_close(self, grid_device):
        circuit = QuantumCircuit(6)
        for _ in range(5):
            circuit.cx(0, 1)
        circuit.cx(2, 3).cx(4, 5)
        placement, _ = initial_mapping(circuit, grid_device, qubit_only=True)
        distance = grid_device.topology.shortest_path_length(
            placement[0][0], placement[1][0]
        )
        assert distance == 1


class TestFreePairing:
    def test_free_pairing_doubles_capacity(self, line_device):
        circuit = make_random_circuit(7, 20, seed=3)
        placement, ququarts = initial_mapping(circuit, line_device, allow_free_pairing=True)
        _assert_valid_placement(placement, line_device, circuit)
        assert len(ququarts) >= 3  # 7 qubits on 4 units needs at least 3 pairs

    def test_heavily_interacting_pair_shares_a_unit(self, grid_device):
        circuit = QuantumCircuit(6)
        for _ in range(10):
            circuit.cx(0, 1)
        circuit.cx(2, 3)
        placement, ququarts = initial_mapping(circuit, grid_device, allow_free_pairing=True)
        assert placement[0][0] == placement[1][0]
        assert placement[0][0] in ququarts

    def test_ququart_units_have_both_slots_occupied(self, grid_device):
        circuit = make_random_circuit(9, 30, seed=4)
        placement, ququarts = initial_mapping(circuit, grid_device, allow_free_pairing=True)
        occupied = {}
        for qubit, (unit, slot) in placement.items():
            occupied.setdefault(unit, set()).add(slot)
        for unit in ququarts:
            assert occupied[unit] == {0, 1}


class TestForcedPairs:
    def test_forced_pairs_are_co_located(self, grid_device):
        circuit = make_random_circuit(8, 25, seed=5)
        pairs = ((0, 4), (2, 6))
        placement, ququarts = initial_mapping(circuit, grid_device, forced_pairs=pairs)
        for a, b in pairs:
            assert placement[a][0] == placement[b][0]
            assert placement[a][0] in ququarts
        # No additional pairs are created without free pairing.
        assert len(ququarts) == len(pairs)

    def test_invalid_pair_rejected(self, grid_device):
        circuit = make_random_circuit(4, 10, seed=6)
        with pytest.raises(ValueError):
            initial_mapping(circuit, grid_device, forced_pairs=((1, 1),))
        with pytest.raises(ValueError):
            initial_mapping(circuit, grid_device, forced_pairs=((0, 1), (1, 2)))

    def test_forced_pairs_combined_with_free_pairing(self, line_device):
        circuit = make_random_circuit(8, 25, seed=7)
        pairs = ((0, 1),)
        placement, ququarts = initial_mapping(
            circuit, line_device, forced_pairs=pairs, allow_free_pairing=True
        )
        assert placement[0][0] == placement[1][0]
        _assert_valid_placement(placement, line_device, circuit)


class TestSeedPlacement:
    def test_most_connected_qubit_goes_to_center(self):
        device = Device(topology=linear_topology(5))
        circuit = QuantumCircuit(5)
        for other in (1, 2, 3, 4):
            circuit.cx(0, other)
        placement, _ = initial_mapping(circuit, device, qubit_only=True)
        assert placement[0][0] == device.topology.center_unit()
