"""Tests for the content-addressed artifact store (blobs, refs, manifests)."""

import hashlib
import json
import multiprocessing
import pickle
from dataclasses import dataclass

import pytest

from repro.runner import CompileCache, SweepPoint, execute_point, point_key
from repro.store import (
    ArtifactStore,
    MANIFEST_SCHEMA,
    SchemaError,
    build_manifest,
    plan_fingerprint,
    validate,
    validate_manifest,
    wait_for,
)


@dataclass(frozen=True)
class FakePoint:
    """Minimal payload()-bearing point for store-level tests."""

    name: str
    payload_extra: int = 0

    def payload(self) -> dict:
        return {"kind": "fake", "name": self.name, "extra": self.payload_extra}

    def key(self) -> str:
        return point_key(self)

    def execute(self) -> dict:
        return {"name": self.name, "value": self.payload_extra}


def _manifest_for(store: ArtifactStore, *contents: bytes, **overrides) -> dict:
    """A valid manifest whose points reference freshly-written blobs."""
    points = []
    for data in contents:
        digest = store.put_blob(data)
        points.append({"key": "ab" * 32, "blob": digest, "cached": False})
    fields = {
        "kind": "sweep",
        "plan_fp": plan_fingerprint(p["key"] for p in points),
        "code_fp": "cd" * 32,
        "points": points,
        "total_seconds": 0.5,
        "executed": len(points),
        "cache_hits": 0,
        "deduped": 0,
    }
    fields.update(overrides)
    return build_manifest(**fields)


class TestSchemaValidator:
    def test_accepts_the_manifest_schema_itself(self):
        manifest = build_manifest(
            kind="sweep", plan_fp="ab" * 32, code_fp="cd" * 32, points=[],
            total_seconds=0.0, executed=0, cache_hits=0, deduped=0,
        )
        assert validate(manifest, MANIFEST_SCHEMA) is None

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda m: m.update(schema=2), r"\$\.schema"),
        (lambda m: m.update(kind="party"), r"\$\.kind"),
        (lambda m: m.update(plan_fingerprint="xyz"), r"\$\.plan_fingerprint"),
        (lambda m: m.pop("timings"), "missing required property"),
        (lambda m: m.update(surprise=1), "unexpected property"),
        (lambda m: m["timings"].update(executed=-1), "below minimum"),
        (lambda m: m["timings"].update(executed=1.5), "expected integer"),
    ])
    def test_rejects_and_names_the_offending_field(self, mutate, fragment):
        manifest = build_manifest(
            kind="sweep", plan_fp="ab" * 32, code_fp="cd" * 32, points=[],
            total_seconds=0.0, executed=0, cache_hits=0, deduped=0,
        )
        mutate(manifest)
        with pytest.raises(SchemaError, match=fragment):
            validate_manifest(manifest)

    def test_point_entries_are_validated_with_paths(self):
        manifest = build_manifest(
            kind="sweep", plan_fp="ab" * 32, code_fp="cd" * 32,
            points=[{"key": "ab" * 32, "blob": "cd" * 32, "cached": True}],
            total_seconds=0.0, executed=0, cache_hits=1, deduped=0,
        )
        manifest["points"][0]["blob"] = "nope"
        with pytest.raises(SchemaError, match=r"\$\.points\[0\]\.blob"):
            validate_manifest(manifest)

    def test_booleans_are_not_integers(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})
        with pytest.raises(SchemaError):
            validate(True, {"type": "number"})
        assert validate(True, {"type": "boolean"}) is None

    def test_build_manifest_refuses_to_build_invalid(self):
        with pytest.raises(SchemaError):
            build_manifest(
                kind="nonsense", plan_fp="ab" * 32, code_fp="cd" * 32, points=[],
                total_seconds=0.0, executed=0, cache_hits=0, deduped=0,
            )

    def test_plan_fingerprint_is_order_sensitive(self):
        assert plan_fingerprint(["a" * 64, "b" * 64]) != plan_fingerprint(["b" * 64, "a" * 64])


class TestBlobs:
    def test_roundtrip_and_fanout_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_blob(b"hello artifacts")
        assert digest == hashlib.sha256(b"hello artifacts").hexdigest()
        path = store.blob_path(digest)
        assert path.parent.name == digest[:2]
        assert path.parent.parent == store.blobs_dir
        assert store.get_blob(digest) == b"hello artifacts"
        assert store.has_blob(digest)

    def test_put_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.put_blob(b"x") == store.put_blob(b"x")
        assert store.stats().blobs == 1

    def test_tampered_blob_reads_as_miss_and_is_removed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_blob(b"good content")
        store.blob_path(digest).write_bytes(b"evil content")
        assert store.get_blob(digest) is None
        assert not store.blob_path(digest).exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_blob(b"a")
        store.put_ref("ab" * 32, "cd" * 32)
        store.write_manifest(_manifest_for(store, b"b"))
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]


class TestRefsAndObjects:
    def test_object_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_object("ab" * 32, {"answer": 42}, payload={"q": 1})
        assert store.get_object("ab" * 32) == {"answer": 42}
        ref = store.get_ref("ab" * 32)
        assert ref["blob"] == digest
        assert ref["payload"] == {"q": 1}

    def test_corrupt_ref_is_removed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_object("ab" * 32, 1)
        store.ref_path("ab" * 32).write_text("{not json")
        assert store.get_object("ab" * 32) is None
        assert not store.ref_path("ab" * 32).exists()

    def test_dangling_ref_is_a_miss_and_cleaned(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_object("ab" * 32, 1)
        store.blob_path(digest).unlink()
        assert store.get_object("ab" * 32) is None
        assert not store.ref_path("ab" * 32).exists()

    def test_truncated_blob_is_a_miss_not_a_crash(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_object("ab" * 32, list(range(1000)))
        path = store.blob_path(digest)
        path.write_bytes(path.read_bytes()[:17])
        assert store.get_object("ab" * 32) is None


class TestManifests:
    def test_write_read_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manifest = _manifest_for(store, b"result-bytes")
        path = store.write_manifest(manifest)
        assert path.exists()
        assert store.read_manifest(manifest["manifest_id"]) == manifest
        assert store.manifest_ids() == [manifest["manifest_id"]]

    def test_invalid_manifest_refused_at_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manifest = _manifest_for(store, b"data")
        manifest["kind"] = "nonsense"
        with pytest.raises(SchemaError):
            store.write_manifest(manifest)


class TestVerify:
    def test_clean_store_verifies(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_object("ab" * 32, {"v": 1}, payload={"p": 1})
        store.write_manifest(_manifest_for(store, b"one", b"two"))
        report = store.verify()
        assert report.ok
        assert report.checked_blobs == 3
        assert report.checked_refs == 1
        assert report.checked_manifests == 1

    @pytest.mark.parametrize("corrupt, kind", [
        (lambda s: s.blob_path(s.put_blob(b"x")).write_bytes(b"y"), "blob-hash-mismatch"),
        (lambda s: s.put_ref("ab" * 32, "cd" * 32), "ref-dangling"),
        (lambda s: s.ref_path("ab" * 32).parent.mkdir(parents=True) or
                   s.ref_path("ab" * 32).write_text("{broken"), "ref-unparseable"),
        (lambda s: (s.blobs_dir / "zz").mkdir() or
                   (s.blobs_dir / "zz" / "not-a-digest").write_bytes(b"?"), "blob-misplaced"),
        (lambda s: s.manifest_path("0" * 16).write_text("{broken"), "manifest-unparseable"),
        (lambda s: s.manifest_path("0" * 16).write_text('{"schema": 99}'), "manifest-schema"),
    ])
    def test_each_corruption_kind_is_reported(self, tmp_path, corrupt, kind):
        store = ArtifactStore(tmp_path)
        corrupt(store)
        report = store.verify()
        assert not report.ok
        assert {issue["kind"] for issue in report.issues} == {kind}

    def test_manifest_referencing_missing_blob_fails_verify(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manifest = _manifest_for(store, b"soon gone")
        store.write_manifest(manifest)
        store.blob_path(manifest["points"][0]["blob"]).unlink()
        report = store.verify()
        assert [issue["kind"] for issue in report.issues] == ["manifest-dangling"]


class TestGC:
    def test_orphan_blobs_are_collected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_blob(b"orphan")
        report = store.gc()
        assert report.removed_blobs == 1
        assert report.reclaimed_bytes == len(b"orphan")
        assert store.stats().blobs == 0

    def test_ref_referenced_blob_survives(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_object("ab" * 32, {"keep": True})
        report = store.gc()
        assert report.removed_blobs == 0
        assert report.kept_blobs == 1
        assert store.get_object("ab" * 32) == {"keep": True}

    def test_manifest_referenced_blob_is_never_collected(self, tmp_path):
        # The satellite guarantee: gc must not eat a blob only a manifest
        # (no ref) still points at.
        store = ArtifactStore(tmp_path)
        manifest = _manifest_for(store, b"manifest-only")
        store.write_manifest(manifest)
        digest = manifest["points"][0]["blob"]
        assert store.get_ref("ab" * 32) is None or True  # no ref for this key
        report = store.gc()
        assert report.removed_blobs == 0
        assert store.has_blob(digest)
        assert store.verify().ok

    def test_stale_temp_files_are_swept(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_blob(b"kept")
        store.put_ref("ab" * 32, digest)
        (store.blobs_dir / digest[:2] / "x.tmp.123").write_bytes(b"torn")
        (store.refs_dir / "ab" / "y.json.tmp.9").write_bytes(b"torn")
        report = store.gc()
        assert report.removed_temp_files == 2
        assert store.has_blob(digest)

    def test_clear_empties_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_object("ab" * 32, 1)
        store.write_manifest(_manifest_for(store, b"data"))
        assert store.clear() == 1
        stats = store.stats()
        assert (stats.blobs, stats.refs, stats.manifests) == (0, 0, 0)


# ----------------------------------------------------------------------
# concurrent publication (two real processes, one store)
# ----------------------------------------------------------------------
def _publish_batch(root: str, writer: int, names: list) -> None:
    """Worker body: publish shared and private keys as fast as possible."""
    store = ArtifactStore(root)
    for _ in range(10):
        for name in names:
            point = FakePoint(name=name)
            store.put_object(point_key(point), point.execute(), payload=point.payload())
        store.put_object(
            point_key(FakePoint(name=f"private-{writer}", payload_extra=writer)),
            {"writer": writer},
        )


class TestConcurrentWriters:
    def test_two_processes_same_and_different_keys(self, tmp_path):
        shared = ["alpha", "beta", "gamma"]
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_publish_batch, args=(str(tmp_path), i, shared))
            for i in range(2)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60)
            assert process.exitcode == 0
        store = ArtifactStore(tmp_path)
        # no torn files: every blob re-hashes, every ref resolves
        report = store.verify()
        assert report.ok, report.as_dict()
        # dedupe observed: 3 shared results + 2 private ones = 5 blobs/refs,
        # however many times the writers raced over them
        stats = store.stats()
        assert stats.refs == 5
        assert stats.blobs == 5
        for name in shared:
            assert store.get_object(point_key(FakePoint(name=name)))["name"] == name
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]


class TestCompileCacheShim:
    def test_results_live_in_the_store_layout(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = SweepPoint("bv", 4, "qubit_only")
        result = execute_point(point)
        blob_path = cache.put(point, result)
        assert blob_path.is_relative_to(tmp_path / "blobs")
        assert ArtifactStore(tmp_path).verify().ok
        assert cache.get(point).report == result.report

    def test_truncated_blob_is_a_miss_not_an_unpickling_crash(self, tmp_path):
        # Regression for the pre-store CompileCache: a partial pickle write
        # (crash mid-put) used to be fed straight to pickle.load on the next
        # read.  The store re-hashes on read, so truncation must surface as
        # a plain miss that a later put repairs.
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = SweepPoint("bv", 4, "qubit_only")
        result = execute_point(point)
        blob_path = cache.put(point, result)
        blob_path.write_bytes(blob_path.read_bytes()[:64])
        assert cache.get(point) is None
        assert cache.stats.misses == 1
        cache.put(point, result)
        assert cache.get(point).report == result.report

    def test_two_caches_share_one_store(self, tmp_path):
        writer, reader = CompileCache.from_store(ArtifactStore(tmp_path)), CompileCache.from_store(ArtifactStore(tmp_path))
        point = SweepPoint("bv", 4, "qubit_only")
        writer.put(point, execute_point(point))
        assert reader.get(point) is not None
        assert reader.stats.hits == 1

    def test_pickle_protocol_is_stable_for_identical_results(self, tmp_path):
        cache = CompileCache.from_store(ArtifactStore(tmp_path))
        point = SweepPoint("bv", 4, "qubit_only")
        result = execute_point(point)
        data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        assert cache.put(point, result).name == hashlib.sha256(data).hexdigest()


class TestWaitFor:
    def test_returns_truthy_value(self):
        assert wait_for(lambda: "ready", timeout=1.0) == "ready"

    def test_times_out(self):
        with pytest.raises(TimeoutError, match="nothing"):
            wait_for(lambda: False, timeout=0.05, poll=0.01, message="nothing")


class TestRefDocumentFormat:
    def test_ref_document_is_audit_friendly_json(self, tmp_path):
        store = ArtifactStore(tmp_path)
        point = FakePoint(name="audit")
        key = point_key(point)
        store.put_object(key, point.execute(), payload=point.payload())
        document = json.loads(store.ref_path(key).read_text())
        assert document["key"] == key
        assert document["payload"]["name"] == "audit"
