"""Tests for the benchmark workloads."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.simulation import simulate_logical_circuit
from repro.workloads import (
    ALGORITHMIC_BENCHMARKS,
    BENCHMARK_NAMES,
    DYNAMIC_BENCHMARKS,
    GRAPH_BENCHMARKS,
    STRUCTURED_BENCHMARKS,
    bernstein_vazirani,
    binary_welded_tree_graph,
    build_benchmark,
    cuccaro_adder,
    cylinder_graph,
    generalized_toffoli,
    ghz_state,
    qaoa_from_graph,
    qft_circuit,
    qram_circuit,
    random_clifford_t,
    random_graph,
    torus_graph,
)


class TestGraphGenerators:
    @pytest.mark.parametrize("num_nodes", [5, 10, 20, 30])
    def test_random_graph_connected(self, num_nodes):
        graph = random_graph(num_nodes, density=0.3, seed=1)
        assert graph.number_of_nodes() == num_nodes
        assert nx.is_connected(graph)

    def test_random_graph_density_scales_edges(self):
        sparse = random_graph(20, density=0.1, seed=2)
        dense = random_graph(20, density=0.6, seed=2)
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_random_graph_deterministic_by_seed(self):
        a = random_graph(15, seed=5)
        b = random_graph(15, seed=5)
        assert set(a.edges) == set(b.edges)

    @pytest.mark.parametrize("num_nodes", [8, 12, 16, 30])
    def test_cylinder_graph(self, num_nodes):
        graph = cylinder_graph(num_nodes)
        assert graph.number_of_nodes() == num_nodes
        assert nx.is_connected(graph)
        # Full rows wrap around, creating 4-cycles.
        assert any(len(cycle) >= 3 for cycle in nx.cycle_basis(graph))

    def test_torus_has_more_edges_than_cylinder(self):
        cylinder = cylinder_graph(16)
        torus = torus_graph(16)
        assert torus.number_of_edges() > cylinder.number_of_edges()

    @pytest.mark.parametrize("num_nodes", [6, 14, 20, 30])
    def test_binary_welded_tree(self, num_nodes):
        graph = binary_welded_tree_graph(num_nodes)
        assert graph.number_of_nodes() == num_nodes
        assert nx.is_connected(graph)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_graph(1)
        with pytest.raises(ValueError):
            random_graph(5, density=0.0)
        with pytest.raises(ValueError):
            cylinder_graph(2)
        with pytest.raises(ValueError):
            binary_welded_tree_graph(1)


class TestBernsteinVazirani:
    def test_structure(self):
        circuit = bernstein_vazirani(8, secret=0b1011001)
        assert circuit.num_qubits == 8
        counts = circuit.count_ops()
        assert counts["cx"] == 4  # popcount of the secret
        # Interaction graph is a star on the target qubit: no cycles.
        graph = nx.Graph(list(circuit.interaction_pairs()))
        assert nx.cycle_basis(graph) == []

    def test_algorithm_recovers_secret(self):
        secret = 0b10110
        circuit = bernstein_vazirani(6, secret=secret)
        vector = simulate_logical_circuit(circuit)
        index = int(np.argmax(np.abs(vector) ** 2))
        # Data qubits are 0..4 (most significant first in the state index);
        # the last qubit is the oracle target in |->.
        measured = 0
        for bit in range(5):
            if (index >> (5 - bit)) & 1:
                measured |= 1 << bit
        assert measured == secret

    def test_random_secret_is_dense(self):
        circuit = bernstein_vazirani(12, seed=3)
        assert circuit.count_ops()["cx"] >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)
        with pytest.raises(ValueError):
            bernstein_vazirani(3, secret=0b100)


class TestCuccaroAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 1), (2, 3), (3, 3)])
    def test_addition_is_correct(self, a, b):
        # 2-bit adder: 6 qubits = carry-in, b0, a0, b1, a1, carry-out.
        width = 2
        circuit = QuantumCircuit(2 * width + 2, "adder-test")
        for bit in range(width):
            if (a >> bit) & 1:
                circuit.x(2 + 2 * bit)
            if (b >> bit) & 1:
                circuit.x(1 + 2 * bit)
        circuit = circuit.compose(cuccaro_adder(2 * width + 2))
        vector = simulate_logical_circuit(decompose_to_basis(circuit))
        index = int(np.argmax(np.abs(vector) ** 2))
        bits = [(index >> (5 - position)) & 1 for position in range(6)]
        result = bits[1] | (bits[3] << 1) | (bits[5] << 2)  # b0, b1, carry-out
        assert result == a + b
        # The a register is restored by the UMA blocks.
        assert bits[2] | (bits[4] << 1) == a

    def test_interaction_graph_contains_triangles(self):
        circuit = cuccaro_adder(12)
        graph = nx.Graph(list(circuit.interaction_pairs()))
        triangles = [cycle for cycle in nx.cycle_basis(graph) if len(cycle) == 3]
        assert triangles

    def test_size_validation(self):
        with pytest.raises(ValueError):
            cuccaro_adder(3)


class TestGeneralizedToffoli:
    # An 8-qubit CNU has exactly 4 controls (0-3), 3 ancillas (4-6) and the
    # target on qubit 7, with no size reduction in the constructor.
    @pytest.mark.parametrize("controls_set", [0, 1, 2, 3, 4])
    def test_target_flips_only_when_all_controls_set(self, controls_set):
        circuit = generalized_toffoli(8)
        prep = QuantumCircuit(8)
        for control in range(controls_set):
            prep.x(control)
        full = prep.compose(circuit)
        vector = simulate_logical_circuit(decompose_to_basis(full))
        index = int(np.argmax(np.abs(vector) ** 2))
        target_bit = index & 1  # target is the last qubit
        expected = 1 if controls_set >= 4 else 0
        assert target_bit == expected

    def test_ancillas_are_restored(self):
        circuit = generalized_toffoli(8)
        prep = QuantumCircuit(8)
        for control in range(4):
            prep.x(control)
        vector = simulate_logical_circuit(decompose_to_basis(prep.compose(circuit)))
        index = int(np.argmax(np.abs(vector) ** 2))
        bits = [(index >> (7 - position)) & 1 for position in range(8)]
        for ancilla in range(4, 7):
            assert bits[ancilla] == 0

    def test_minimal_size_is_plain_toffoli(self):
        circuit = generalized_toffoli(3)
        assert circuit.count_ops()["ccx"] == 1

    def test_interaction_graph_contains_triangles(self):
        circuit = generalized_toffoli(11)
        graph = nx.Graph(list(circuit.interaction_pairs()))
        assert any(len(cycle) == 3 for cycle in nx.cycle_basis(graph))


class TestQRAM:
    def test_structure(self):
        circuit = qram_circuit(12)
        assert circuit.num_qubits == 12
        assert circuit.count_ops()["ccx"] > 0
        # Cycles exist and share the address qubits (edges), the property the
        # paper blames for RB's inconsistency on QRAM.
        graph = nx.Graph(list(circuit.interaction_pairs()))
        assert len(nx.cycle_basis(graph)) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            qram_circuit(4)


class TestQAOA:
    def test_edge_pattern(self):
        graph = nx.Graph([(0, 1), (1, 2)])
        circuit = qaoa_from_graph(graph, seed=0)
        counts = circuit.count_ops()
        assert counts["cx"] == 4  # two per edge
        assert counts["z"] == 2
        assert counts["h"] == 3

    def test_rounds_multiply_edge_usage(self):
        graph = nx.Graph([(0, 1), (1, 2)])
        circuit = qaoa_from_graph(graph, rounds=3, seed=0)
        assert circuit.count_ops()["cx"] == 12

    def test_requires_consecutive_nodes(self):
        graph = nx.Graph([(1, 2)])
        with pytest.raises(ValueError):
            qaoa_from_graph(graph)

    def test_edge_order_is_seeded(self):
        graph = random_graph(8, seed=4)
        a = qaoa_from_graph(graph, seed=1)
        b = qaoa_from_graph(graph, seed=1)
        c = qaoa_from_graph(graph, seed=2)
        assert a == b
        assert a != c


class TestQFT:
    def test_uniform_superposition_from_zero(self):
        # QFT|0...0> is the uniform superposition: every amplitude 1/sqrt(N).
        circuit = qft_circuit(4)
        vector = simulate_logical_circuit(circuit)
        assert np.allclose(np.abs(vector), 1 / 4.0)

    def test_interaction_graph_is_complete(self):
        circuit = qft_circuit(6)
        pairs = set(circuit.interaction_pairs())
        assert len(pairs) == 6 * 5 // 2

    def test_swap_toggle(self):
        with_swaps = qft_circuit(8)
        without = qft_circuit(8, insert_swaps=False)
        assert with_swaps.count_ops()["swap"] == 4
        assert "swap" not in without.count_ops()

    def test_validation(self):
        with pytest.raises(ValueError):
            qft_circuit(1)


class TestGHZ:
    @pytest.mark.parametrize("entangler", ["chain", "star"])
    def test_state_is_ghz(self, entangler):
        circuit = ghz_state(5, entangler=entangler)
        vector = simulate_logical_circuit(circuit)
        probabilities = np.abs(vector) ** 2
        # only |00000> and |11111> are populated, each with probability 1/2
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[-1] == pytest.approx(0.5)
        assert probabilities[1:-1].sum() == pytest.approx(0.0)

    def test_chain_interactions_are_local(self):
        circuit = ghz_state(10)
        assert set(circuit.interaction_pairs()) == {(q, q + 1) for q in range(9)}

    def test_star_interactions_form_a_hub(self):
        circuit = ghz_state(10, entangler="star")
        assert set(circuit.interaction_pairs()) == {(0, q) for q in range(1, 10)}

    def test_validation(self):
        with pytest.raises(ValueError):
            ghz_state(1)
        with pytest.raises(ValueError):
            ghz_state(5, entangler="ring")


class TestRandomCliffordT:
    def test_deterministic_by_seed(self):
        assert random_clifford_t(10, seed=7) == random_clifford_t(10, seed=7)
        assert random_clifford_t(10, seed=7) != random_clifford_t(10, seed=8)

    def test_every_qubit_is_active(self):
        circuit = random_clifford_t(9, seed=0)
        assert circuit.active_qubits() == set(range(9))

    def test_gate_alphabet(self):
        circuit = random_clifford_t(8, seed=3)
        allowed = {"h", "s", "sdg", "t", "tdg", "x", "z", "cx"}
        assert set(circuit.count_ops()) <= allowed
        assert circuit.count_ops()["cx"] > 0

    def test_two_qubit_probability_extremes(self):
        none = random_clifford_t(8, two_qubit_probability=0.0, seed=0)
        all_cx = random_clifford_t(8, two_qubit_probability=1.0, seed=0)
        assert none.num_two_qubit_gates() == 0
        assert all_cx.count_ops() == {"cx": all_cx.num_two_qubit_gates()}

    def test_depth_scales_gate_count(self):
        shallow = random_clifford_t(8, depth=2, seed=0)
        deep = random_clifford_t(8, depth=20, seed=0)
        assert len(deep) > len(shallow)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_clifford_t(1)
        with pytest.raises(ValueError):
            random_clifford_t(8, depth=0)
        with pytest.raises(ValueError):
            random_clifford_t(8, two_qubit_probability=1.5)


class TestRegistry:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("size", [8, 16, 25])
    def test_every_benchmark_builds(self, name, size):
        circuit = build_benchmark(name, size, seed=0)
        assert circuit.num_qubits == size
        assert len(circuit) > 0

    def test_families_partition(self):
        families = (STRUCTURED_BENCHMARKS, GRAPH_BENCHMARKS, ALGORITHMIC_BENCHMARKS,
                    DYNAMIC_BENCHMARKS)
        union = set().union(*families)
        assert union == set(BENCHMARK_NAMES)
        assert sum(len(family) for family in families) == len(BENCHMARK_NAMES)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_benchmark("quantum_supremacy", 10)

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            build_benchmark("qram", 4)
