"""Tests for the simulation-based compiled-circuit equivalence checker."""

import pytest

from repro.arch import Device, grid_topology, linear_topology
from repro.circuits import QuantumCircuit
from repro.compiler import QompressCompiler
from repro.compression import get_strategy
from repro.simulation import (
    VerificationError,
    assert_equivalent,
    compiled_state_fidelity,
    replay_compiled,
)
from tests.conftest import make_random_circuit


@pytest.fixture
def device():
    return Device(topology=grid_topology(2, 3))


class TestReplay:
    def test_bell_circuit_replays_exactly(self, device, bell_circuit):
        compiler = QompressCompiler(device, get_strategy("qubit_only"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(bell_circuit)
        assert compiled_state_fidelity(compiled, bell_circuit) == pytest.approx(1.0)

    def test_ghz_with_compression(self, device, ghz_circuit):
        compiler = QompressCompiler(device, get_strategy("eqm"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(ghz_circuit)
        assert_equivalent(compiled, ghz_circuit)

    @pytest.mark.parametrize("strategy", ["qubit_only", "eqm", "rb", "awe", "pp"])
    def test_random_circuits_equivalent_under_every_strategy(self, device, strategy):
        for seed in range(3):
            circuit = make_random_circuit(6, 22, seed=seed)
            compiler = QompressCompiler(device, get_strategy(strategy),
                                        merge_single_qubit_gates=False)
            compiled = compiler.compile(circuit)
            assert_equivalent(compiled, circuit)

    def test_compressed_register_larger_than_device(self):
        # 6 logical qubits on a 3-unit line require compression to fit at all.
        device = Device(topology=linear_topology(3))
        circuit = make_random_circuit(6, 18, seed=7, include_swaps=False)
        compiler = QompressCompiler(device, get_strategy("eqm"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(circuit)
        assert_equivalent(compiled, circuit)

    def test_toffoli_circuit_equivalent(self, device):
        circuit = QuantumCircuit(5).h(0).ccx(0, 1, 2).cx(2, 3).ccx(1, 3, 4)
        compiler = QompressCompiler(device, get_strategy("rb"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(circuit)
        assert_equivalent(compiled, circuit)

    def test_replay_returns_register_state(self, device, bell_circuit):
        compiler = QompressCompiler(device, get_strategy("qubit_only"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(bell_circuit)
        state = replay_compiled(compiled)
        assert state.dims == (2,) * device.num_units


class TestVerificationFailures:
    def test_merged_ops_are_rejected(self, device):
        circuit = QuantumCircuit(4).cx(0, 1).h(0).h(1).cx(0, 1).h(0).h(1)
        # Force a compression so single-ququart gates exist and get merged.
        compiler = QompressCompiler(device, get_strategy("eqm"))
        compiled = compiler.compile(circuit)
        if any(op.gate == "x01" for op in compiled.ops):
            with pytest.raises(VerificationError, match="merge_single_qubit_gates"):
                replay_compiled(compiled)

    def test_missing_source_circuit_rejected(self, device, bell_circuit):
        compiler = QompressCompiler(device, get_strategy("qubit_only"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(bell_circuit)
        compiled.lowered_circuit = None
        with pytest.raises(VerificationError, match="lowered source"):
            replay_compiled(compiled)

    def test_corrupted_op_detected(self, device, ghz_circuit):
        compiler = QompressCompiler(device, get_strategy("qubit_only"),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(ghz_circuit)
        # Flip one CX's operands: the replay no longer matches the source.
        for op in compiled.ops:
            if op.style.is_cx_like:
                op.slots = (op.slots[1], op.slots[0])
                break
        assert compiled_state_fidelity(compiled, ghz_circuit) < 1.0 - 1e-6


class TestFullQuquartReplay:
    """FQ encode/decode semantics are modelled, closing the last strategy gap."""

    @pytest.mark.parametrize("bench,size", [
        ("bv", 4), ("bv", 5), ("ghz", 6), ("qft", 5), ("qft", 6),
    ])
    def test_fq_compiles_replay_exactly(self, bench, size):
        from repro.runner import SweepPoint

        compiled = SweepPoint(bench, size, "fq").execute().compiled
        assert_equivalent(compiled, compiled.lowered_circuit)

    def test_fq_random_circuits_equivalent(self, device):
        for seed in range(3):
            circuit = make_random_circuit(6, 18, seed=seed, include_swaps=False)
            compiler = QompressCompiler(device, get_strategy("fq"))
            compiled = compiler.compile(circuit)
            assert_equivalent(compiled, circuit)

    def test_swap4_units_are_promoted_to_ququarts(self):
        # qft-6 FQ routing parks an encoded pair on an otherwise-bare unit;
        # the replay register must carry both encoded slots there
        from repro.runner import SweepPoint
        from repro.simulation.verify import register_dims

        compiled = SweepPoint("qft", 6, "fq").execute().compiled
        swap4_units = {
            unit for op in compiled.ops if op.gate == "swap4" for unit in op.units
        }
        assert swap4_units, "qft-6 FQ is expected to route with swap4"
        dims = register_dims(compiled)
        for unit in swap4_units:
            assert dims[unit] == 4

    def test_fq_ops_carry_slots(self):
        from repro.runner import SweepPoint

        compiled = SweepPoint("ghz", 4, "fq").execute().compiled
        for op in compiled.ops:
            if op.gate == "measure":
                continue
            assert op.slots, f"{op.gate} op lost its slot annotation"
            if op.gate in ("enc", "dec"):
                assert len(op.slots) == 2
            if op.gate == "swap4":
                assert len(op.slots) == 4
