"""Tests for scripts/check_bench_regression.py, including --update-baseline."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"


def _bench_json(means: dict[str, float]) -> str:
    return json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    })


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True, text=True,
    )


class TestRegressionGate:
    def test_ok_within_tolerance(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.1}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 0
        assert "no regressions" in result.stdout

    def test_regression_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 2.0}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_new_benchmark_does_not_fail(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.0, "bench_new": 5.0}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 0
        assert "NEW" in result.stdout


class TestUpdateBaseline:
    def test_rewrites_the_baseline_file(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 3.0, "bench_new": 2.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0, result.stderr
        assert "baseline updated" in result.stdout
        assert baseline.read_text() == current.read_text()

    def test_exits_zero_even_with_regressions(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 10.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0
        # the comparison report is still printed before updating
        assert "REGRESSION" in result.stdout

    def test_still_reports_before_updating(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0
        assert "benchmark" in result.stdout
        assert "wrote 1 benchmark(s)" in result.stdout

    def test_recovers_a_missing_baseline(self, tmp_path):
        baseline = tmp_path / "missing.json"
        current = tmp_path / "artifact.json"
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0, result.stderr
        assert "unreadable" in result.stdout
        assert baseline.read_text() == current.read_text()

    def test_missing_baseline_without_update_is_a_clean_error(self, tmp_path):
        current = tmp_path / "artifact.json"
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(tmp_path / "missing.json"), str(current))
        assert result.returncode == 1
        assert "cannot read baseline" in result.stderr
        assert "Traceback" not in result.stderr

    def test_empty_current_run_still_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(json.dumps({"benchmarks": []}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 1
        # an empty artifact must never wipe the baseline
        assert baseline.read_text() == _bench_json({"bench_a": 1.0})


FLOOR_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_shots_floor.py"


def _throughput_json(entries: list[dict]) -> str:
    return json.dumps({"benchmarks": entries})


def _entry(name: str, mean: float, shots: int | None, engine: str = "vectorised") -> dict:
    extra = {"engine": engine}
    if shots is not None:
        extra["shots"] = shots
    return {"fullname": name, "stats": {"mean": mean}, "extra_info": extra}


def _run_floor(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(FLOOR_SCRIPT), *argv],
        capture_output=True, text=True,
    )


class TestShotsFloorGate:
    def test_fast_engine_passes(self, tmp_path):
        results = tmp_path / "bench.json"
        # 20000 shots in 0.02 s = 1M shots/s
        results.write_text(_throughput_json([_entry("bench_vec", 0.02, 20000)]))
        result = _run_floor(str(results), "--floor", "vectorised=50000")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_slow_engine_fails(self, tmp_path):
        results = tmp_path / "bench.json"
        # 1000 shots in 1 s = 1k shots/s, far below any sensible floor
        results.write_text(_throughput_json([_entry("bench_vec", 1.0, 1000)]))
        result = _run_floor(str(results), "--floor", "vectorised=50000")
        assert result.returncode == 1
        assert "BELOW FLOOR" in result.stdout

    def test_reference_entries_are_not_gated(self, tmp_path):
        results = tmp_path / "bench.json"
        results.write_text(_throughput_json([
            _entry("bench_vec", 0.02, 20000),
            _entry("bench_ref", 1.0, 1000, engine="reference"),
        ]))
        result = _run_floor(str(results), "--floor", "vectorised=50000")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "bench_ref" not in result.stdout

    def test_missing_tagged_benchmark_is_an_error(self, tmp_path):
        results = tmp_path / "bench.json"
        results.write_text(_throughput_json([_entry("untagged", 0.5, None)]))
        result = _run_floor(str(results), "--floor", "vectorised=50000")
        assert result.returncode == 1
        assert "no benchmark" in result.stderr

    def test_real_artifact_shape(self, tmp_path):
        # the real benchmark run emits this via pytest-benchmark; assert the
        # script reads the same JSON the CI smoke job uploads
        results = tmp_path / "bench.json"
        results.write_text(json.dumps({
            "benchmarks": [{
                "fullname": "benchmarks/test_bench_noise.py::test_bench_trajectories_event_only",
                "stats": {"mean": 0.025, "stddev": 0.001},
                "extra_info": {"shots": 20000, "engine": "vectorised"},
            }]
        }))
        result = _run_floor(str(results), "--floor", "vectorised=100000")
        assert result.returncode == 0, result.stdout + result.stderr


class TestMultiEngineFloors:
    """--floor engine=rate gates several engine tags in one invocation."""

    def _results(self, tmp_path, tracked_mean=0.1):
        results = tmp_path / "bench.json"
        results.write_text(_throughput_json([
            _entry("bench_vec", 0.02, 20000),                       # 1M shots/s
            _entry("bench_tracked", tracked_mean, 4000, engine="tracked"),
            _entry("bench_ref", 1.0, 1000, engine="reference"),
        ]))
        return results

    def test_both_floors_pass(self, tmp_path):
        results = self._results(tmp_path)  # tracked: 40k shots/s
        result = _run_floor(str(results), "--floor", "vectorised=50000",
                            "--floor", "tracked=3000")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "bench_vec" in result.stdout
        assert "bench_tracked" in result.stdout
        assert "bench_ref" not in result.stdout

    def test_tracked_floor_fails_independently(self, tmp_path):
        results = self._results(tmp_path, tracked_mean=4.0)  # 1k shots/s
        result = _run_floor(str(results), "--floor", "vectorised=50000",
                            "--floor", "tracked=3000")
        assert result.returncode == 1
        assert "BELOW FLOOR" in result.stdout

    def test_missing_engine_tag_is_an_error(self, tmp_path):
        results = tmp_path / "bench.json"
        results.write_text(_throughput_json([_entry("bench_vec", 0.02, 20000)]))
        result = _run_floor(str(results), "--floor", "tracked=3000")
        assert result.returncode == 1
        assert "tracked" in result.stderr

    def test_bad_floor_spellings_are_rejected(self, tmp_path):
        results = self._results(tmp_path)
        for bad in ("tracked", "tracked=abc", "tracked=-5", "=100"):
            result = _run_floor(str(results), "--floor", bad)
            assert result.returncode == 2, bad
        result = _run_floor(str(results))
        assert result.returncode == 2

    def test_conflicting_floors_are_rejected_loudly(self, tmp_path):
        # a duplicate or double-spelled floor must not silently weaken the
        # gate to whichever value happens to win
        results = self._results(tmp_path)
        result = _run_floor(str(results), "--floor", "tracked=3000",
                            "--floor", "tracked=30")
        assert result.returncode == 2
        assert "duplicate" in result.stderr
        result = _run_floor(str(results), "--min-shots-per-sec", "500000")
        assert result.returncode == 2  # legacy spelling removed
