"""Tests for scripts/check_bench_regression.py, including --update-baseline."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"


def _bench_json(means: dict[str, float]) -> str:
    return json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    })


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True, text=True,
    )


class TestRegressionGate:
    def test_ok_within_tolerance(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.1}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 0
        assert "no regressions" in result.stdout

    def test_regression_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 2.0}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_new_benchmark_does_not_fail(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.0, "bench_new": 5.0}))
        result = _run(str(baseline), str(current))
        assert result.returncode == 0
        assert "NEW" in result.stdout


class TestUpdateBaseline:
    def test_rewrites_the_baseline_file(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 3.0, "bench_new": 2.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0, result.stderr
        assert "baseline updated" in result.stdout
        assert baseline.read_text() == current.read_text()

    def test_exits_zero_even_with_regressions(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 10.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0
        # the comparison report is still printed before updating
        assert "REGRESSION" in result.stdout

    def test_still_reports_before_updating(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0
        assert "benchmark" in result.stdout
        assert "wrote 1 benchmark(s)" in result.stdout

    def test_recovers_a_missing_baseline(self, tmp_path):
        baseline = tmp_path / "missing.json"
        current = tmp_path / "artifact.json"
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 0, result.stderr
        assert "unreadable" in result.stdout
        assert baseline.read_text() == current.read_text()

    def test_missing_baseline_without_update_is_a_clean_error(self, tmp_path):
        current = tmp_path / "artifact.json"
        current.write_text(_bench_json({"bench_a": 1.0}))
        result = _run(str(tmp_path / "missing.json"), str(current))
        assert result.returncode == 1
        assert "cannot read baseline" in result.stderr
        assert "Traceback" not in result.stderr

    def test_empty_current_run_still_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "artifact.json"
        baseline.write_text(_bench_json({"bench_a": 1.0}))
        current.write_text(json.dumps({"benchmarks": []}))
        result = _run(str(baseline), str(current), "--update-baseline")
        assert result.returncode == 1
        # an empty artifact must never wipe the baseline
        assert baseline.read_text() == _bench_json({"bench_a": 1.0})
