"""Tests for noise specs, presets and device-derived noise models."""

import json
import math

import pytest

from repro.evaluation import compile_benchmark
from repro.metrics.eps import coherence_eps, gate_eps, total_eps
from repro.noise import NOISE_PRESETS, NoiseModel, NoiseSpec, resolve_model
from repro.pulses.durations import GateDurationTable
from repro.runner import SweepPoint


@pytest.fixture(scope="module")
def compiled_bv6():
    return compile_benchmark("bv", 6, "eqm").compiled


class TestNoiseSpec:
    def test_presets_build(self, compiled_bv6):
        for name in NOISE_PRESETS:
            model = NoiseSpec.from_preset(name).build(compiled_bv6.device)
            assert isinstance(model, NoiseModel)

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            NoiseSpec.from_preset("very_noisy")

    def test_preset_overrides(self):
        spec = NoiseSpec.from_preset("pessimistic", t1_scale=1.0)
        assert spec.gate_error_scale == 3.0
        assert spec.t1_scale == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseSpec(gate_error_scale=-1.0)
        with pytest.raises(ValueError):
            NoiseSpec(t1_scale=0.0)
        with pytest.raises(ValueError):
            NoiseSpec(idle_policy="optimistic")
        with pytest.raises(ValueError):
            NoiseSpec(heterogeneity=1.0)

    def test_payload_is_json_serialisable(self):
        for name in NOISE_PRESETS:
            payload = NoiseSpec.from_preset(name).payload()
            assert json.loads(json.dumps(payload)) == payload

    def test_payload_distinguishes_presets(self):
        payloads = {json.dumps(NoiseSpec.from_preset(n).payload(), sort_keys=True)
                    for n in NOISE_PRESETS}
        assert len(payloads) == len(NOISE_PRESETS)

    def test_specs_are_hashable(self):
        assert hash(NoiseSpec()) == hash(NoiseSpec())
        assert NoiseSpec() != NoiseSpec(t1_scale=2.0)

    def test_with_idle_policy(self):
        spec = NoiseSpec().with_idle_policy("kraus")
        assert spec.idle_policy == "kraus"
        assert NoiseSpec().idle_policy == "worst_case"

    def test_resolve_model_passthrough(self, compiled_bv6):
        model = NoiseSpec().build(compiled_bv6.device)
        assert resolve_model(model, compiled_bv6.device) is model


class TestAnalyticAgreement:
    """The table1 model's analytic prediction IS the paper's EPS formula."""

    def test_gate_eps_matches(self, compiled_bv6):
        model = NoiseSpec.from_preset("table1").build(compiled_bv6.device)
        assert model.analytic_gate_eps(compiled_bv6) == pytest.approx(
            gate_eps(compiled_bv6), rel=1e-12
        )

    def test_coherence_eps_matches(self, compiled_bv6):
        model = NoiseSpec.from_preset("table1").build(compiled_bv6.device)
        assert model.analytic_coherence_eps(compiled_bv6) == pytest.approx(
            coherence_eps(compiled_bv6), rel=1e-12
        )

    def test_total_eps_matches_for_every_strategy(self):
        for strategy in ("qubit_only", "fq", "rb"):
            compiled = compile_benchmark("ghz", 5, strategy).compiled
            model = NoiseSpec.from_preset("table1").build(compiled.device)
            assert model.analytic_total_eps(compiled) == pytest.approx(
                total_eps(compiled), rel=1e-12
            )

    def test_ideal_model(self, compiled_bv6):
        model = NoiseSpec.from_preset("ideal").build(compiled_bv6.device)
        assert model.is_ideal
        assert model.analytic_total_eps(compiled_bv6) == 1.0

    def test_pessimistic_scales_gate_error(self, compiled_bv6):
        table1 = NoiseSpec.from_preset("table1").build(compiled_bv6.device)
        pessimistic = NoiseSpec.from_preset("pessimistic").build(compiled_bv6.device)
        op = next(op for op in compiled_bv6.ops if op.fidelity < 1.0)
        assert pessimistic.op_error_probability(op) == pytest.approx(
            3.0 * table1.op_error_probability(op)
        )
        assert pessimistic.qubit_decay_rate == pytest.approx(3.0 * table1.qubit_decay_rate)


class TestHeterogeneity:
    def test_deterministic_for_fixed_seed(self, compiled_bv6):
        spec = NoiseSpec.from_preset("heterogeneous")
        one = spec.build(compiled_bv6.device)
        two = spec.build(compiled_bv6.device)
        assert one.unit_t1_factor == two.unit_t1_factor
        assert one.edge_error_factor == two.edge_error_factor

    def test_seed_changes_factors(self, compiled_bv6):
        base = NoiseSpec.from_preset("heterogeneous").build(compiled_bv6.device)
        other = NoiseSpec.from_preset(
            "heterogeneous", hetero_seed=1
        ).build(compiled_bv6.device)
        assert base.unit_t1_factor != other.unit_t1_factor

    def test_factors_within_bounds(self, compiled_bv6):
        spec = NoiseSpec(heterogeneity=0.3)
        model = spec.build(compiled_bv6.device)
        for factor in list(model.unit_t1_factor.values()) + list(
            model.edge_error_factor.values()
        ):
            assert 0.7 <= factor <= 1.3

    def test_edge_factor_shifts_two_unit_ops_only(self, compiled_bv6):
        model = NoiseSpec.from_preset("heterogeneous").build(compiled_bv6.device)
        uniform = NoiseSpec.from_preset("table1").build(compiled_bv6.device)
        single = next(op for op in compiled_bv6.ops
                      if len(op.units) == 1 and op.fidelity < 1.0)
        assert model.op_error_probability(single) == pytest.approx(
            uniform.op_error_probability(single)
        )

    def test_unit_factor_changes_decay_rate(self, compiled_bv6):
        model = NoiseSpec(heterogeneity=0.4, hetero_seed=5).build(compiled_bv6.device)
        factor = model.unit_t1_factor[0]
        assert model.decay_rate(0, False) == pytest.approx(
            model.qubit_decay_rate / factor
        )


class TestCalibrationPlumbing:
    def test_error_rate_helper(self):
        table = GateDurationTable()
        assert table.error_rate("cx2") == pytest.approx(0.01)
        assert table.error_rate("x") == pytest.approx(0.001)
        assert table.error_rate("measure") == 0.0

    def test_model_follows_fidelity_overrides(self):
        point = SweepPoint("bv", 4, "qubit_only")
        compiled = point.execute().compiled
        device = compiled.device.with_durations(
            compiled.device.durations.with_overrides(fidelities={"cx2": 0.9})
        )
        model = NoiseSpec().build(device)
        assert model.gate_error["cx2"] == pytest.approx(0.1)


class TestResidencySegments:
    def test_segments_cover_the_makespan(self, compiled_bv6):
        makespan = compiled_bv6.makespan_ns
        for segments in compiled_bv6.residency_segments().values():
            assert segments[0][0] == 0.0
            assert segments[-1][1] == pytest.approx(makespan)
            for (_, end, _), (start, _, _) in zip(segments, segments[1:]):
                assert start == pytest.approx(end)

    def test_mode_times_match_segments(self, compiled_bv6):
        segments = compiled_bv6.residency_segments()
        for logical, (qubit_time, ququart_time) in compiled_bv6.qubit_mode_times().items():
            total = sum(end - start for start, end, _ in segments[logical])
            assert qubit_time + ququart_time == pytest.approx(total)
            assert total == pytest.approx(compiled_bv6.makespan_ns)

    def test_decay_exponent_matches_coherence_eps(self, compiled_bv6):
        model = NoiseSpec.from_preset("table1").build(compiled_bv6.device)
        exponent = sum(model.residency_decay_exponent(compiled_bv6).values())
        assert math.exp(-exponent) == pytest.approx(coherence_eps(compiled_bv6))
