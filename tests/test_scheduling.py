"""Tests for op merging and scheduling."""

import pytest

from repro.compiler.result import PhysicalOp
from repro.compiler.scheduling import makespan, merge_single_qubit_ops, schedule_ops


def _op(gate, units, logical=(), duration=100.0):
    return PhysicalOp(gate=gate, units=tuple(units), logical_qubits=tuple(logical),
                      duration_ns=duration, fidelity=0.99)


class TestMerging:
    def test_x0_x1_on_same_unit_merge(self):
        ops = [_op("x0", (0,), (1,), 87.0), _op("x1", (0,), (2,), 66.0)]
        merged = merge_single_qubit_ops(ops)
        assert len(merged) == 1
        assert merged[0].gate == "x01"
        assert set(merged[0].logical_qubits) == {1, 2}

    def test_same_slot_gates_do_not_merge(self):
        ops = [_op("x0", (0,), (1,)), _op("x0", (0,), (1,))]
        merged = merge_single_qubit_ops(ops)
        assert [op.gate for op in merged] == ["x0", "x0"]

    def test_intervening_op_blocks_merge(self):
        ops = [
            _op("x0", (0,), (1,)),
            _op("cx0q", (0, 1), (1, 3)),
            _op("x1", (0,), (2,)),
        ]
        merged = merge_single_qubit_ops(ops)
        assert [op.gate for op in merged] == ["x0", "cx0q", "x1"]

    def test_bare_qubit_gates_never_merge(self):
        ops = [_op("x", (0,), (1,)), _op("x", (0,), (1,))]
        merged = merge_single_qubit_ops(ops)
        assert [op.gate for op in merged] == ["x", "x"]

    def test_merges_on_different_units_independent(self):
        ops = [
            _op("x0", (0,), (1,)),
            _op("x0", (1,), (3,)),
            _op("x1", (0,), (2,)),
            _op("x1", (1,), (4,)),
        ]
        merged = merge_single_qubit_ops(ops)
        assert [op.gate for op in merged] == ["x01", "x01"]


class TestScheduling:
    def test_disjoint_ops_run_in_parallel(self):
        ops = [_op("cx2", (0, 1)), _op("cx2", (2, 3))]
        scheduled = schedule_ops(ops, merge_singles=False)
        assert scheduled[0].start_ns == 0.0
        assert scheduled[1].start_ns == 0.0

    def test_shared_unit_serialises(self):
        ops = [_op("cx2", (0, 1), duration=251.0), _op("cx2", (1, 2), duration=251.0)]
        scheduled = schedule_ops(ops, merge_singles=False)
        assert scheduled[1].start_ns == pytest.approx(251.0)
        assert makespan(scheduled) == pytest.approx(502.0)

    def test_ququart_serialisation_effect(self):
        # Two CX gates that touch different encoded qubits of the same
        # ququart (unit 0) cannot run in parallel -- the core serialization
        # cost the paper discusses.
        ops = [_op("cx0q", (0, 1), duration=560.0), _op("cx1q", (0, 2), duration=632.0)]
        scheduled = schedule_ops(ops, merge_singles=False)
        assert scheduled[1].start_ns == pytest.approx(560.0)

    def test_merged_ops_get_stamped_duration(self):
        ops = [_op("x0", (0,), (1,), 87.0), _op("x1", (0,), (2,), 66.0)]
        scheduled = schedule_ops(ops, combined_duration_ns=86.0, combined_fidelity=0.999)
        assert scheduled[0].gate == "x01"
        assert scheduled[0].duration_ns == pytest.approx(86.0)
        assert scheduled[0].fidelity == pytest.approx(0.999)

    def test_no_unit_runs_two_ops_at_once(self):
        ops = [
            _op("cx2", (0, 1), duration=251.0),
            _op("swap2", (1, 2), duration=504.0),
            _op("cx2", (0, 3), duration=251.0),
            _op("cx2", (2, 3), duration=251.0),
            _op("x", (0,), duration=35.0),
        ]
        scheduled = schedule_ops(ops, merge_singles=False)
        intervals: dict[int, list[tuple[float, float]]] = {}
        for op in scheduled:
            for unit in op.units:
                intervals.setdefault(unit, []).append((op.start_ns, op.end_ns))
        for unit_intervals in intervals.values():
            unit_intervals.sort()
            for (start_a, end_a), (start_b, _end_b) in zip(unit_intervals, unit_intervals[1:]):
                assert start_b >= end_a - 1e-9

    def test_makespan_of_empty_schedule(self):
        assert makespan([]) == 0.0

    def test_end_time_property(self):
        op = _op("cx2", (0, 1), duration=251.0)
        schedule_ops([op], merge_singles=False)
        assert op.end_ns == pytest.approx(op.start_ns + 251.0)
