"""Smoke tests that keep the shipped examples runnable."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "adder_compression.py", "qaoa_topologies.py",
                "t1_crossover.py", "pulse_gates.py", "qasm_roundtrip.py"} <= names
        qasm_files = {path.name for path in EXAMPLES_DIR.glob("*.qasm")}
        assert {"teleport.qasm", "qft4.qasm"} <= qasm_files

    def test_teleport_example_feeds_forward_with_fidelity_one(self):
        from repro.circuits.qasm import parse_qasm
        from repro.compiler.pipeline import QompressCompiler
        from repro.compression import get_strategy
        from repro.noise.model import NoiseSpec
        from repro.noise.trajectory import TrajectoryEngine
        from repro.runner import make_device

        circuit = parse_qasm((EXAMPLES_DIR / "teleport.qasm").read_text())
        assert circuit.name == "teleport"
        assert any(gate.condition is not None for gate in circuit)
        compiled = QompressCompiler(
            make_device("grid", circuit.num_qubits), get_strategy("eqm"),
            merge_single_qubit_gates=False,
        ).compile(circuit)
        assert compiled.is_dynamic
        shots = 32
        engine = TrajectoryEngine(
            compiled, NoiseSpec(gate_error_scale=0.0, t1_scale=1e15),
            track_state=True,
        )
        chunk = engine.run(shots, seed=7)
        assert chunk.outcome_fidelity_sum == pytest.approx(float(shots))

    def test_qasm_roundtrip_runs(self, capsys):
        module = _load_example("qasm_roundtrip")
        module.main()
        output = capsys.readouterr().out
        assert "round-trip ok" in output
        assert "opaque" in output

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "gate EPS" in output
        assert "qubit_only" in output
        assert "eqm" in output

    def test_adder_example_compare_runs(self, capsys):
        module = _load_example("adder_compression")
        module.compare_strategies(num_qubits=10)
        output = capsys.readouterr().out
        assert "Cuccaro adder" in output
        assert "rb" in output

    def test_adder_example_verification_runs(self, capsys):
        module = _load_example("adder_compression")
        module.verify_small_adder()
        output = capsys.readouterr().out
        assert "correctly" in output

    @pytest.mark.parametrize("name,symbol", [
        ("qaoa_topologies", "main"),
        ("t1_crossover", "main"),
        ("pulse_gates", "show_table1"),
    ])
    def test_other_examples_importable(self, name, symbol):
        module = _load_example(name)
        assert callable(getattr(module, symbol))

    def test_pulse_example_table_section(self, capsys):
        module = _load_example("pulse_gates")
        module.show_table1()
        output = capsys.readouterr().out
        assert "cx2" in output
