"""Property-based tests over the compiler's core invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import Device, grid_topology, linear_topology
from repro.circuits import QuantumCircuit
from repro.compiler import CostModel, QompressCompiler, initial_mapping
from repro.compression import get_strategy
from repro.metrics import evaluate_eps
from repro.simulation import assert_equivalent


# ----------------------------------------------------------------------
# circuit generation strategy
# ----------------------------------------------------------------------
@st.composite
def small_circuits(draw, max_qubits=6, max_gates=24):
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    circuit = QuantumCircuit(num_qubits, "hypothesis")
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["single", "cx", "swap"]))
        if kind == "single":
            name = draw(st.sampled_from(["x", "h", "z", "s", "t"]))
            circuit.add(name, draw(st.integers(0, num_qubits - 1)))
        else:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            if kind == "cx":
                circuit.cx(a, b)
            else:
                circuit.swap(a, b)
    return circuit


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCompilerInvariants:
    @given(circuit=small_circuits(), strategy=st.sampled_from(["qubit_only", "eqm", "rb"]))
    @_SETTINGS
    def test_compiled_circuits_are_equivalent_to_source(self, circuit, strategy):
        device = Device(topology=grid_topology(2, 3))
        compiler = QompressCompiler(device, get_strategy(strategy),
                                    merge_single_qubit_gates=False)
        compiled = compiler.compile(circuit)
        assert_equivalent(compiled, circuit)

    @given(circuit=small_circuits())
    @_SETTINGS
    def test_schedule_never_overlaps_units(self, circuit):
        device = Device(topology=grid_topology(2, 3))
        compiled = QompressCompiler(device, get_strategy("eqm")).compile(circuit)
        busy: dict[int, list[tuple[float, float]]] = {}
        for op in compiled.ops:
            for unit in op.units:
                busy.setdefault(unit, []).append((op.start_ns, op.end_ns))
        for intervals in busy.values():
            intervals.sort()
            for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
                assert start_b >= end_a - 1e-9

    @given(circuit=small_circuits())
    @_SETTINGS
    def test_eps_metrics_are_probabilities(self, circuit):
        device = Device(topology=grid_topology(2, 3))
        compiled = QompressCompiler(device, get_strategy("eqm")).compile(circuit)
        report = evaluate_eps(compiled)
        assert 0.0 < report.gate_eps <= 1.0
        assert 0.0 < report.coherence_eps <= 1.0
        assert 0.0 < report.total_eps <= 1.0
        assert report.total_eps == pytest.approx(report.gate_eps * report.coherence_eps)

    @given(circuit=small_circuits())
    @_SETTINGS
    def test_gate_eps_equals_product_of_op_fidelities(self, circuit):
        device = Device(topology=grid_topology(2, 3))
        compiled = QompressCompiler(device, get_strategy("rb")).compile(circuit)
        report = evaluate_eps(compiled)
        product = math.prod(op.fidelity for op in compiled.ops)
        assert report.gate_eps == pytest.approx(product, rel=1e-9)

    @given(circuit=small_circuits(max_qubits=8), seed=st.integers(0, 100))
    @_SETTINGS
    def test_mapping_is_always_injective(self, circuit, seed):
        device = Device(topology=grid_topology(2, 3))
        placement, ququarts = initial_mapping(circuit, device, allow_free_pairing=True)
        slots = list(placement.values())
        assert len(set(slots)) == len(slots)
        for unit in ququarts:
            occupants = [q for q, (u, _s) in placement.items() if u == unit]
            assert len(occupants) == 2


class TestCostModelInvariants:
    @given(
        ququarts=st.sets(st.integers(0, 3), max_size=4),
        source=st.tuples(st.integers(0, 3), st.integers(0, 1)),
        destination=st.tuples(st.integers(0, 3), st.integers(0, 1)),
    )
    @_SETTINGS
    def test_swap_distance_is_nonnegative_and_symmetric_in_reachability(
        self, ququarts, source, destination
    ):
        device = Device(topology=linear_topology(4))
        costs = CostModel(device, frozenset(ququarts))
        if not (costs.is_enabled(source) and costs.is_enabled(destination)):
            return
        forward = costs.swap_distance(source, destination)
        assert forward >= 0.0
        backward = CostModel(device, frozenset(ququarts)).swap_distance(destination, source)
        # SWAP costs are symmetric per link, so the best path cost is too.
        assert forward == pytest.approx(backward, rel=1e-9)

    @given(ququarts=st.sets(st.integers(0, 3), max_size=4))
    @_SETTINGS
    def test_op_success_probabilities_bounded(self, ququarts):
        device = Device(topology=linear_topology(4))
        costs = CostModel(device, frozenset(ququarts))
        for gate in ("cx2", "swap2", "cx0q", "swap00", "swap4", "enc"):
            success = costs.op_success(gate, (0, 1))
            assert 0.0 < success < 1.0
