"""End-to-end integration tests reproducing the paper's headline claims.

These tests exercise the whole stack (workload -> strategy -> compiler ->
metrics) and assert the *qualitative* results of the evaluation section:
which strategy wins, in which direction the trends go, and where crossovers
appear.  Absolute numbers are implementation-specific and are not asserted.
"""

import pytest

from repro.evaluation import (
    compile_benchmark,
    device_for,
    figure9_qubit_error_sweep,
    figure11_t1_improvement,
    figure12_t1_ratio_sweep,
    figure13_topologies,
    run_strategies,
)


@pytest.fixture(scope="module")
def cuccaro_results():
    """Cuccaro adder (16 qubits) compiled under the main strategies once."""
    return run_strategies(
        "cuccaro", 16, strategies=("qubit_only", "fq", "eqm", "rb", "awe")
    )


class TestGateEPSClaims:
    def test_compression_beats_qubit_only_on_cuccaro(self, cuccaro_results):
        baseline = cuccaro_results["qubit_only"].report.gate_eps
        assert cuccaro_results["eqm"].report.gate_eps > baseline
        assert cuccaro_results["rb"].report.gate_eps > baseline

    def test_fq_baseline_is_consistently_worse(self, cuccaro_results):
        baseline = cuccaro_results["qubit_only"].report.gate_eps
        assert cuccaro_results["fq"].report.gate_eps < baseline

    def test_fq_uses_many_more_gates(self, cuccaro_results):
        assert (
            cuccaro_results["fq"].report.num_ops
            > cuccaro_results["qubit_only"].report.num_ops
        )

    def test_compression_reduces_communication_on_cuccaro(self, cuccaro_results):
        assert (
            cuccaro_results["rb"].report.num_communication_ops
            <= cuccaro_results["qubit_only"].report.num_communication_ops
        )

    def test_cnu_also_benefits(self):
        results = run_strategies("cnu", 15, strategies=("qubit_only", "eqm", "rb"))
        baseline = results["qubit_only"].report.gate_eps
        assert max(
            results["eqm"].report.gate_eps, results["rb"].report.gate_eps
        ) > baseline

    def test_rb_makes_no_compression_on_bv(self):
        results = run_strategies("bv", 12, strategies=("qubit_only", "rb"))
        assert results["rb"].report.num_compressed_pairs == 0

    def test_internal_cx_gates_appear_with_compression(self, cuccaro_results):
        from repro.gates import GateStyle

        styles = cuccaro_results["eqm"].compiled.style_counts()
        assert styles.get(GateStyle.INTERNAL_CX, 0) > 0


class TestCoherenceClaims:
    def test_compression_increases_circuit_duration(self, cuccaro_results):
        assert (
            cuccaro_results["eqm"].report.makespan_ns
            > cuccaro_results["qubit_only"].report.makespan_ns
        )

    def test_fq_has_the_worst_duration(self, cuccaro_results):
        fq = cuccaro_results["fq"].report.makespan_ns
        for strategy in ("qubit_only", "eqm", "rb", "awe"):
            assert fq > cuccaro_results[strategy].report.makespan_ns

    def test_coherence_eps_suffers_at_default_t1(self, cuccaro_results):
        # At the worst-case 1:3 T1 ratio, decoherence outweighs gate gains.
        assert (
            cuccaro_results["eqm"].report.coherence_eps
            < cuccaro_results["qubit_only"].report.coherence_eps
        )

    def test_total_eps_crossover_appears_as_ququart_t1_improves(self):
        results = figure12_t1_ratio_sweep(
            benchmarks=("cuccaro",), num_qubits=12,
            ratios=(1 / 3, 0.5, 0.75, 1.0), strategy="rb", t1_scale=10.0,
        )
        data = results["cuccaro"]
        series = data["series"]
        baseline_total = data["baseline"].report.total_eps
        totals = [series[ratio].report.total_eps for ratio in sorted(series)]
        # Monotone (non-decreasing) in the T1 ratio...
        assert all(b >= a - 1e-12 for a, b in zip(totals, totals[1:]))
        # ...and by ratio 1.0 compression should be at least competitive.
        assert totals[-1] >= baseline_total * 0.95

    def test_better_t1_improves_coherence_for_everyone(self):
        normal = run_strategies("cuccaro", 10, strategies=("qubit_only", "eqm"))
        better = figure11_t1_improvement(
            benchmarks=("cuccaro",), num_qubits=10,
            strategies=("qubit_only", "eqm"), t1_scale=10.0,
        )["cuccaro"]
        for strategy in ("qubit_only", "eqm"):
            assert (
                better[strategy].report.coherence_eps
                > normal[strategy].report.coherence_eps
            )


class TestSensitivityClaims:
    def test_compression_advantage_shrinks_with_better_qubits(self):
        sweep = figure9_qubit_error_sweep(
            benchmarks=("cuccaro",), num_qubits=12,
            error_scales=(1.0, 0.1), strategies=("qubit_only", "rb"),
        )["cuccaro"]
        advantage_at_default = (
            sweep[1.0]["rb"].report.gate_eps / sweep[1.0]["qubit_only"].report.gate_eps
        )
        advantage_with_better_qubits = (
            sweep[0.1]["rb"].report.gate_eps / sweep[0.1]["qubit_only"].report.gate_eps
        )
        assert advantage_with_better_qubits < advantage_at_default

    def test_improvements_hold_across_topologies(self):
        results = figure13_topologies(
            benchmarks=("cnu",), sizes=(9, 13), topologies=("grid", "heavy_hex", "ring"),
        )["cnu"]
        for topology, stats in results.items():
            assert stats["min"] > 0.0
            assert stats["max"] >= stats["min"]
            # EQM should not be dramatically worse than qubit-only anywhere.
            assert stats["max"] > 0.9


class TestCapacityClaim:
    def test_circuit_twice_the_device_size_compiles(self):
        # "up to 2x increased qubit capacity": 18 logical qubits on a 9-unit grid.
        device = device_for("grid", 9)
        result = compile_benchmark("cuccaro", 18, "eqm", device=device)
        assert result.compiled.num_logical_qubits == 18
        assert len(result.compiled.ququart_units) == 9
        assert result.report.gate_eps > 0.0

    def test_qubit_only_cannot_fit_oversized_circuit(self):
        from repro.compiler.mapping import MappingError

        device = device_for("grid", 9)
        with pytest.raises(MappingError):
            compile_benchmark("cuccaro", 18, "qubit_only", device=device)
