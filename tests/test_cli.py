"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_compile_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["compile", "--benchmark", "cuccaro", "--qubits", "10", "--strategy", "rb"]
        )
        assert args.command == "compile"
        assert args.benchmark == "cuccaro"
        assert args.qubits == 10
        assert args.strategy == "rb"
        assert args.device == "grid"

    def test_unknown_benchmark_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["compile", "--benchmark", "nope", "--qubits", "10"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks == ["cuccaro", "cnu"]
        assert args.strategies == ["qubit_only", "eqm", "rb"]
        assert args.workers == 1
        assert args.cache_dir is None

    def test_sweep_runner_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "4", "--cache-dir", "/tmp/c", "--json", "out.json"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.json_output == "out.json"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "cx2" in output
        assert "251" in output
        assert "swap4" in output

    def test_compile_reports_eps(self, capsys):
        code = main(["compile", "--benchmark", "bv", "--qubits", "8",
                     "--strategy", "eqm", "--show-gates"])
        assert code == 0
        output = capsys.readouterr().out
        assert "gate EPS" in output
        assert "total EPS" in output
        assert "gate type" in output

    def test_sweep_writes_csv(self, capsys, tmp_path):
        target = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--benchmarks", "bv", "--sizes", "6",
            "--strategies", "qubit_only", "eqm", "--output", str(target),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "qubit_only" in output
        assert target.exists()
        lines = target.read_text().splitlines()
        assert lines[0].startswith("benchmark")
        assert len(lines) == 3  # header + two strategies

    def test_figure_fig4(self, capsys, tmp_path):
        target = tmp_path / "fig4.csv"
        code = main(["figure", "--name", "fig4", "--output", str(target)])
        assert code == 0
        output = capsys.readouterr().out
        assert "qubit_only" in output
        assert target.exists()

    def test_figure_fig3(self, capsys):
        assert main(["figure", "--name", "fig3"]) == 0
        output = capsys.readouterr().out
        assert "cx0q" in output

    def test_sweep_parallel_json_and_cache(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        cache_dir = tmp_path / "cache"
        argv = ["sweep", "--benchmarks", "bv", "--sizes", "6",
                "--strategies", "qubit_only", "eqm",
                "--workers", "2", "--cache-dir", str(cache_dir),
                "--json", str(target)]
        assert main(argv) == 0
        first = json.loads(target.read_text())
        assert len(first) == 2
        assert first[0]["benchmark"] == "bv"
        assert {row["strategy"] for row in first} == {"qubit_only", "eqm"}
        capsys.readouterr()

        # second run must be fully cache-served and byte-identical
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "2 hits, 0 misses" in output
        assert json.loads(target.read_text()) == first

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        main(["sweep", "--benchmarks", "bv", "--sizes", "6",
              "--strategies", "qubit_only", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "--dir", str(cache_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "--dir", str(cache_dir), "--clear"]) == 0
        assert "removed 1 cached results" in capsys.readouterr().out
