"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_compile_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["compile", "--benchmark", "cuccaro", "--qubits", "10", "--strategy", "rb"]
        )
        assert args.command == "compile"
        assert args.benchmark == "cuccaro"
        assert args.qubits == 10
        assert args.strategy == "rb"
        assert args.device == "grid"

    def test_unknown_benchmark_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["compile", "--benchmark", "nope", "--qubits", "10"])

    def test_benchmark_and_qasm_are_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["compile", "--benchmark", "bv", "--qasm", "x.qasm"])
        with pytest.raises(SystemExit):
            parser.parse_args(["compile"])

    def test_qasm_arguments(self):
        args = build_parser().parse_args(
            ["compile", "--qasm", "file.qasm", "--emit-qasm", "out.qasm"]
        )
        assert args.qasm == "file.qasm"
        assert args.emit_qasm == "out.qasm"
        assert args.benchmark is None

    def test_new_workload_families_accepted(self):
        args = build_parser().parse_args(
            ["sweep", "--benchmarks", "qft", "ghz", "random_clifford_t", "--sizes", "8"]
        )
        assert args.benchmarks == ["qft", "ghz", "random_clifford_t"]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks == ["cuccaro", "cnu"]
        assert args.strategies == ["qubit_only", "eqm", "rb"]
        assert args.workers == 1
        assert args.cache_dir is None

    def test_sweep_runner_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "4", "--cache-dir", "/tmp/c", "--json", "out.json"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.json_output == "out.json"

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--benchmark", "bv", "--qubits", "6",
             "--shots", "500", "--noise", "pessimistic", "--track-state"]
        )
        assert args.command == "simulate"
        assert args.shots == 500
        assert args.noise == "pessimistic"
        assert args.track_state

    def test_simulate_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--shots", "10"])

    def test_simulate_unknown_noise_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--benchmark", "bv", "--qubits", "4", "--noise", "nope"]
            )

    def test_validate_eps_defaults(self):
        args = build_parser().parse_args(["validate-eps"])
        assert args.command == "validate-eps"
        # None = "use the documented default"; lets --smoke detect conflicts
        assert args.benchmarks is None
        assert args.sizes is None
        assert args.shots is None
        assert args.noise == "table1"
        assert not args.smoke


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "cx2" in output
        assert "251" in output
        assert "swap4" in output

    def test_compile_reports_eps(self, capsys):
        code = main(["compile", "--benchmark", "bv", "--qubits", "8",
                     "--strategy", "eqm", "--show-gates"])
        assert code == 0
        output = capsys.readouterr().out
        assert "gate EPS" in output
        assert "total EPS" in output
        assert "gate type" in output

    def test_sweep_writes_csv(self, capsys, tmp_path):
        target = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--benchmarks", "bv", "--sizes", "6",
            "--strategies", "qubit_only", "eqm", "--output", str(target),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "qubit_only" in output
        assert target.exists()
        lines = target.read_text().splitlines()
        assert lines[0].startswith("benchmark")
        assert len(lines) == 3  # header + two strategies

    def test_figure_fig4(self, capsys, tmp_path):
        target = tmp_path / "fig4.csv"
        code = main(["figure", "--name", "fig4", "--output", str(target)])
        assert code == 0
        output = capsys.readouterr().out
        assert "qubit_only" in output
        assert target.exists()

    def test_figure_fig3(self, capsys):
        assert main(["figure", "--name", "fig3"]) == 0
        output = capsys.readouterr().out
        assert "cx0q" in output

    def test_sweep_parallel_json_and_cache(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        cache_dir = tmp_path / "cache"
        argv = ["sweep", "--benchmarks", "bv", "--sizes", "6",
                "--strategies", "qubit_only", "eqm",
                "--workers", "2", "--cache-dir", str(cache_dir),
                "--json", str(target)]
        assert main(argv) == 0
        first = json.loads(target.read_text())
        assert first["schema"] == 2
        assert len(first["rows"]) == 2
        assert first["rows"][0]["benchmark"] == "bv"
        assert {row["strategy"] for row in first["rows"]} == {"qubit_only", "eqm"}
        assert first["cache"] == {"enabled": True, "hits": 0, "misses": 2}
        capsys.readouterr()

        # second run must be fully cache-served and row-identical
        assert main(argv) == 0
        capsys.readouterr()
        second = json.loads(target.read_text())
        assert second["cache"] == {"enabled": True, "hits": 2, "misses": 0}
        assert second["rows"] == first["rows"]

    def test_sweep_json_without_cache(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        assert main(["sweep", "--benchmarks", "ghz", "--sizes", "6",
                     "--strategies", "qubit_only", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["cache"] == {"enabled": False, "hits": 0, "misses": 0}
        assert len(data["rows"]) == 1

    def test_compile_qasm_file(self, capsys, tmp_path):
        source = tmp_path / "bell.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        assert main(["compile", "--qasm", str(source)]) == 0
        output = capsys.readouterr().out
        assert "bell" in output
        assert "total EPS" in output

    def test_compile_qasm_emit_roundtrip(self, capsys, tmp_path):
        source = tmp_path / "ghz3.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
        )
        routed = tmp_path / "routed.qasm"
        assert main(["compile", "--qasm", str(source),
                     "--emit-qasm", str(routed)]) == 0
        text = routed.read_text()
        assert "OPENQASM 2.0;" in text
        assert "qreg u[" in text
        assert "// t=" in text

    def test_compile_qasm_missing_file(self, capsys):
        assert main(["compile", "--qasm", "/nonexistent/x.qasm"]) == 2
        assert "cannot compile" in capsys.readouterr().err

    def test_compile_qasm_bad_program(self, capsys, tmp_path):
        source = tmp_path / "bad.qasm"
        source.write_text("OPENQASM 2.0;\nqreg q[1];\nif (c==0) x q[0];\n")
        assert main(["compile", "--qasm", str(source)]) == 2
        message = capsys.readouterr().err
        assert "unknown classical register" in message
        assert "line 3, column 5" in message

    def test_compile_benchmark_requires_qubits(self, capsys):
        assert main(["compile", "--benchmark", "bv"]) == 2
        assert "--qubits" in capsys.readouterr().err

    def test_compile_new_family(self, capsys):
        assert main(["compile", "--benchmark", "qft", "--qubits", "6"]) == 0
        assert "qft-6" in capsys.readouterr().out

    def test_compile_qasm_is_cacheable(self, capsys, tmp_path):
        source = tmp_path / "bell.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        cache_dir = tmp_path / "cache"
        argv = ["compile", "--qasm", str(source), "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: 0 hits, 1 misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses" in second
        # identical EPS lines whether compiled or cache-served
        assert [line for line in first.splitlines() if "EPS" in line] == [
            line for line in second.splitlines() if "EPS" in line
        ]

    def test_compile_qasm_cache_invalidates_on_edit(self, capsys, tmp_path):
        source = tmp_path / "bell.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        cache_dir = tmp_path / "cache"
        argv = ["compile", "--qasm", str(source), "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        source.write_text(source.read_text() + "x q[1];\n")
        assert main(argv) == 0
        assert "cache: 0 hits, 1 misses" in capsys.readouterr().out

    def test_simulate_benchmark(self, capsys):
        code = main(["simulate", "--benchmark", "bv", "--qubits", "4",
                     "--strategy", "eqm", "--shots", "200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "analytic EPS" in output
        assert "simulated success" in output
        assert "95% CI low" in output

    def test_simulate_track_state(self, capsys):
        code = main(["simulate", "--benchmark", "ghz", "--qubits", "3",
                     "--shots", "100", "--strategy", "qubit_only", "--track-state"])
        assert code == 0
        output = capsys.readouterr().out
        assert "outcome success" in output
        assert "mean outcome fidelity" in output

    def test_simulate_track_state_covers_fq(self, capsys):
        # FQ encode/decode semantics are modelled since PR 4
        code = main(["simulate", "--benchmark", "ghz", "--qubits", "3",
                     "--shots", "10", "--strategy", "fq", "--track-state"])
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome success" in out

    def test_simulate_qasm(self, capsys, tmp_path):
        source = tmp_path / "bell.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        assert main(["simulate", "--qasm", str(source), "--shots", "100"]) == 0
        assert "bell" in capsys.readouterr().out

    def test_validate_eps_smoke_writes_json(self, capsys, tmp_path):
        target = tmp_path / "validate.json"
        code = main(["validate-eps", "--smoke", "--json", str(target)])
        assert code == 0
        output = capsys.readouterr().out
        assert "all 4 cells validated" in output
        data = json.loads(target.read_text())
        assert data["schema"] == 1
        assert data["validated"] is True
        assert len(data["rows"]) == 4
        assert all(row["validated"] is True for row in data["rows"])
        assert all(isinstance(row["rel_error"], float) for row in data["rows"])

    def test_validate_eps_smoke_rejects_explicit_flags(self, capsys):
        code = main(["validate-eps", "--smoke", "--shots", "500"])
        assert code == 2
        assert "--smoke fixes" in capsys.readouterr().err

    def test_validate_eps_workers_identical_json(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["validate-eps", "--smoke", "--json", str(serial)]) == 0
        assert main(["validate-eps", "--smoke", "--workers", "2",
                     "--json", str(parallel)]) == 0
        capsys.readouterr()
        assert json.loads(serial.read_text()) == json.loads(parallel.read_text())

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        main(["sweep", "--benchmarks", "bv", "--sizes", "6",
              "--strategies", "qubit_only", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "--dir", str(cache_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "--dir", str(cache_dir), "--clear"]) == 0
        assert "removed 1 cached results" in capsys.readouterr().out


class TestValidateEpsShotGuard:
    def test_zero_shots_is_a_clean_error(self, capsys):
        code = main(["validate-eps", "--shots", "0"])
        assert code == 2
        assert "--shots must be positive" in capsys.readouterr().err


class TestStoreServiceVerbs:
    def _submit(self, spool, store, extra=()):
        return main([
            "submit", "--benchmarks", "bv", "--sizes", "4",
            "--strategies", "qubit_only", "--spool", str(spool),
            "--store", str(store), *extra,
        ])

    def test_submit_serve_once_and_store_verbs(self, capsys, tmp_path):
        spool, store = tmp_path / "spool", tmp_path / "store"
        assert self._submit(spool, store, extra=("--quiet",)) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id

        assert main(["serve", "--spool", str(spool), "--store", str(store),
                     "--once"]) == 0
        output = capsys.readouterr().out
        assert f"job {job_id}: done" in output
        assert "served 1 jobs" in output

        # warm second submission is fully store-served and prints the table
        assert self._submit(spool, store) == 0
        capsys.readouterr()
        assert main(["serve", "--spool", str(spool), "--store", str(store),
                     "--once"]) == 0
        assert "1 store hits, 0 executed" in capsys.readouterr().out

        assert main(["store", "verify", "--dir", str(store), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["issues"] == []
        assert report["checked"]["manifests"] == 2

        assert main(["store", "stats", "--dir", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["blobs"] == 1  # identical point dedupes to one blob
        assert stats["manifests"] == 2

        assert main(["store", "gc", "--dir", str(store)]) == 0
        assert "kept 1 referenced blobs" in capsys.readouterr().out

    def test_submit_wait_against_a_preserved_backlog(self, capsys, tmp_path):
        # serve first, then --wait returns immediately from the status file
        spool, store = tmp_path / "spool", tmp_path / "store"
        assert self._submit(spool, store, extra=("--quiet",)) == 0
        capsys.readouterr()
        assert main(["serve", "--spool", str(spool), "--store", str(store),
                     "--once"]) == 0
        capsys.readouterr()
        assert self._submit(spool, store, extra=("--quiet",)) == 0
        capsys.readouterr()
        assert main(["serve", "--spool", str(spool), "--store", str(store),
                     "--once"]) == 0
        capsys.readouterr()
        assert self._submit(spool, store) == 0
        out = capsys.readouterr().out
        assert "spooled at" in out

    def test_submit_wait_times_out_without_a_server(self, capsys, tmp_path):
        spool, store = tmp_path / "spool", tmp_path / "store"
        code = self._submit(spool, store,
                            extra=("--wait", "--timeout", "0.2", "--quiet"))
        assert code == 1
        assert "is a server running?" in capsys.readouterr().err

    def test_store_verify_fails_on_corruption(self, capsys, tmp_path):
        spool, store = tmp_path / "spool", tmp_path / "store"
        assert self._submit(spool, store, extra=("--quiet",)) == 0
        assert main(["serve", "--spool", str(spool), "--store", str(store),
                     "--once"]) == 0
        capsys.readouterr()
        blob = next(p for p in (store / "blobs").rglob("*") if p.is_file())
        blob.write_bytes(b"corrupted")
        assert main(["store", "verify", "--dir", str(store), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any(i["kind"] == "blob-hash-mismatch" for i in report["issues"])

    def test_submit_wait_prints_the_result_table(self, capsys, tmp_path):
        import threading
        import time

        from repro.service import serve_once
        from repro.store import ArtifactStore

        spool, store = tmp_path / "spool", tmp_path / "store"

        def server():
            jobs = spool / "jobs"
            for _ in range(600):
                if jobs.exists() and any(jobs.glob("*.json")):
                    serve_once(spool, ArtifactStore(store))
                    return
                time.sleep(0.05)

        thread = threading.Thread(target=server)
        thread.start()
        try:
            code = self._submit(spool, store, extra=("--wait",))
        finally:
            thread.join()
        assert code == 0
        out = capsys.readouterr().out
        assert "store hits" in out
        assert "total_eps" in out  # the sweep table header
        assert "\nbv" in out      # one row per point


class TestBackendCLI:
    """The --backend flag and the crosscheck command."""

    def test_backend_choices_come_from_the_registry(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--benchmarks", "bv", "--sizes", "4",
                                  "--backend", "replay"])
        assert args.backend == "replay"
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--benchmarks", "bv", "--sizes", "4",
                               "--backend", "nope"])

    def test_replay_sweep_serves_a_warm_cache(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        target = tmp_path / "sweep.json"
        cache_dir = tmp_path / "cache"
        base = ["sweep", "--benchmarks", "bv", "--sizes", "4",
                "--strategies", "qubit_only", "eqm",
                "--cache-dir", str(cache_dir), "--json", str(target)]
        assert main(base) == 0
        warm = json.loads(target.read_text())
        capsys.readouterr()

        assert main(base + ["--backend", "replay"]) == 0
        capsys.readouterr()
        replayed = json.loads(target.read_text())
        assert replayed["backend"] == "replay"
        assert replayed["cache"] == {"enabled": True, "hits": 2, "misses": 0}
        assert replayed["rows"] == warm["rows"]

    def test_cold_replay_fails_with_a_clean_error(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["sweep", "--benchmarks", "bv", "--sizes", "4",
                     "--strategies", "qubit_only",
                     "--cache-dir", str(tmp_path / "empty"),
                     "--backend", "replay"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no stored result" in err
        assert "Traceback" not in err

    def test_crosscheck_smoke(self, capsys, tmp_path):
        import json

        target = tmp_path / "crosscheck.json"
        assert main(["crosscheck", "--benchmarks", "bv", "--sizes", "4",
                     "--strategies", "qubit_only", "--shots", "400",
                     "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "agree" in out
        data = json.loads(target.read_text())
        assert data["agree"] is True
        assert data["backends"] == ["trajectory", "external-sim"]
        assert len(data["rows"]) == 1
        assert set(data["rows"][0]["eps"]) == {"trajectory", "external-sim"}

    def test_crosscheck_rejects_single_backend(self, capsys):
        assert main(["crosscheck", "--backends", "trajectory",
                     "--shots", "100"]) == 2
        assert "at least two" in capsys.readouterr().err

    def test_crosscheck_rejects_non_positive_shots(self, capsys):
        assert main(["crosscheck", "--shots", "0"]) == 2
        assert "positive" in capsys.readouterr().err
