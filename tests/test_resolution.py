"""Tests for logical-to-physical gate resolution."""

import pytest

from repro.gates import UnitMode, resolve_cx, resolve_single_qubit, resolve_swap
from repro.gates.resolution import resolve_internal_cx


class TestSingleQubitResolution:
    def test_bare_qubit(self):
        assert resolve_single_qubit(UnitMode.QUBIT, 0) == "x"

    def test_encoded_slots(self):
        assert resolve_single_qubit(UnitMode.QUQUART, 0) == "x0"
        assert resolve_single_qubit(UnitMode.QUQUART, 1) == "x1"

    def test_combined(self):
        assert resolve_single_qubit(UnitMode.QUQUART, 0, paired_with_simultaneous=True) == "x01"

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            resolve_single_qubit(UnitMode.QUBIT, 2)


class TestCXResolution:
    def test_internal(self):
        assert resolve_internal_cx(0) == "cx0_in"
        assert resolve_internal_cx(1) == "cx1_in"
        assert resolve_cx(UnitMode.QUQUART, 0, UnitMode.QUQUART, 1, same_unit=True) == "cx0_in"

    def test_internal_requires_ququart(self):
        with pytest.raises(ValueError):
            resolve_cx(UnitMode.QUBIT, 0, UnitMode.QUBIT, 1, same_unit=True)

    def test_internal_requires_distinct_slots(self):
        with pytest.raises(ValueError):
            resolve_cx(UnitMode.QUQUART, 0, UnitMode.QUQUART, 0, same_unit=True)

    def test_qubit_qubit(self):
        assert resolve_cx(UnitMode.QUBIT, 0, UnitMode.QUBIT, 0) == "cx2"

    def test_ququart_controls_qubit(self):
        assert resolve_cx(UnitMode.QUQUART, 0, UnitMode.QUBIT, 0) == "cx0q"
        assert resolve_cx(UnitMode.QUQUART, 1, UnitMode.QUBIT, 0) == "cx1q"

    def test_qubit_controls_ququart(self):
        assert resolve_cx(UnitMode.QUBIT, 0, UnitMode.QUQUART, 0) == "cxq0"
        assert resolve_cx(UnitMode.QUBIT, 0, UnitMode.QUQUART, 1) == "cxq1"

    @pytest.mark.parametrize("control_slot,target_slot,expected", [
        (0, 0, "cx00"), (0, 1, "cx01"), (1, 0, "cx10"), (1, 1, "cx11"),
    ])
    def test_ququart_ququart(self, control_slot, target_slot, expected):
        assert resolve_cx(UnitMode.QUQUART, control_slot, UnitMode.QUQUART, target_slot) == expected

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            resolve_cx(UnitMode.QUBIT, 3, UnitMode.QUBIT, 0)


class TestSwapResolution:
    def test_internal(self):
        assert resolve_swap(UnitMode.QUQUART, 0, UnitMode.QUQUART, 1, same_unit=True) == "swap_in"

    def test_qubit_qubit(self):
        assert resolve_swap(UnitMode.QUBIT, 0, UnitMode.QUBIT, 0) == "swap2"

    def test_qubit_ququart_orientation_independent(self):
        assert resolve_swap(UnitMode.QUBIT, 0, UnitMode.QUQUART, 0) == "swapq0"
        assert resolve_swap(UnitMode.QUQUART, 0, UnitMode.QUBIT, 0) == "swapq0"
        assert resolve_swap(UnitMode.QUBIT, 0, UnitMode.QUQUART, 1) == "swapq1"
        assert resolve_swap(UnitMode.QUQUART, 1, UnitMode.QUBIT, 0) == "swapq1"

    def test_ququart_ququart_canonicalised(self):
        # SWAP01 and SWAP10 are the same physical gate (Table 1 footnote).
        assert resolve_swap(UnitMode.QUQUART, 0, UnitMode.QUQUART, 1) == "swap01"
        assert resolve_swap(UnitMode.QUQUART, 1, UnitMode.QUQUART, 0) == "swap01"
        assert resolve_swap(UnitMode.QUQUART, 0, UnitMode.QUQUART, 0) == "swap00"
        assert resolve_swap(UnitMode.QUQUART, 1, UnitMode.QUQUART, 1) == "swap11"

    def test_internal_requires_ququart_mode(self):
        with pytest.raises(ValueError):
            resolve_swap(UnitMode.QUBIT, 0, UnitMode.QUBIT, 0, same_unit=True)

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            resolve_swap(UnitMode.QUBIT, 0, UnitMode.QUBIT, 5)
